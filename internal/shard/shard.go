// Package shard implements the sharded scatter-gather storage backend —
// the paper's §4.3 "database machine" promoted from the cost model of
// internal/dbmachine to the system's actual scale-out story.
//
// A Store partitions a view's rows across N independent storage devices
// on the global chunk grid of internal/exec: chunk boundaries are
// exec.Chunks(rows, chunk), and a placement policy maps each global
// chunk to exactly one shard. Each shard owns its own storage.Device
// (checksummed pages, retry-with-backoff through its BufferPool,
// optionally wrapped in a FaultDevice), its own transposed colstore
// image of the rows it owns, and its own exec.Pool.
//
// Whole-column aggregates run as scatter-gather: every shard folds its
// chunks into per-global-chunk partial states in parallel, and the
// gather merges the partials in ascending global chunk order — exactly
// the merge order of exec.ColumnMoments/ColumnFreq, so the healthy-path
// answer is bit-identical to the unsharded parallel engine at the same
// chunk size.
//
// Failure is a first-class outcome, not an error. Each shard operation
// is bounded (pool retry, one shard-level retry, a virtual-tick budget
// standing in for a timeout); a shard that keeps failing transitions
// Healthy → Degraded → Down, and Down shards are skipped without I/O so
// degraded latency stays bounded. A lost shard degrades the answer: the
// gather substitutes the shard's last checkpointed partial aggregate
// (stale, with its shadow generation recorded — PR 2's checkpoint
// machinery) or, when none exists, reports the shard's rows missing.
// Either way the query completes with a Report carrying LoadReport-style
// provenance instead of failing.
package shard

import (
	"errors"
	"fmt"
	"sync"

	"statdb/internal/colstore"
	"statdb/internal/dataset"
	"statdb/internal/exec"
	"statdb/internal/obs"
	"statdb/internal/storage"
	"statdb/internal/summary"
)

// ErrShardDown is the sentinel wrapped by errors that mean "this shard
// (or every shard) is out of service". Match with errors.Is; scatter-
// gather queries only return it when no shard answered and no stale
// partial could stand in — a partial answer is a Report, not an error.
var ErrShardDown = errors.New("shard: shard down")

// Health is a shard's availability state.
type Health int

const (
	Healthy  Health = iota // answering normally
	Degraded               // recent failures below the down threshold
	Down                   // failed DownThreshold consecutive ops; skipped without I/O
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// Policy maps global chunks to shards.
type Policy uint8

const (
	// PlaceRoundRobin deals chunk c to shard c % N — interleaved, so a
	// lost shard thins the whole row range evenly.
	PlaceRoundRobin Policy = iota
	// PlaceRange gives each shard one contiguous block of chunks — a
	// lost shard removes one contiguous row interval.
	PlaceRange
)

func (p Policy) String() string {
	switch p {
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceRange:
		return "range"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// shardFor places global chunk c of numChunks onto one of n shards.
func (p Policy) shardFor(c, numChunks, n int) int {
	if n <= 1 {
		return 0
	}
	if p == PlaceRange {
		return c * n / numChunks
	}
	return c % n
}

// Config sizes a sharded store. The zero value of every field has a
// sensible default.
type Config struct {
	Shards int // number of shards; default 1
	// Chunk is the global chunk size, shared with the exec grid; shard
	// boundaries always align to it. Default exec.DefaultChunk.
	Chunk  int
	Policy Policy
	// Workers sizes each shard's exec.Pool. Default 1 (serial folds per
	// shard; the scatter itself is the parallelism).
	Workers int
	// PoolPages is each shard's buffer-pool capacity. Default 64.
	PoolPages int
	// Devices supplies one device per shard (len must equal Shards when
	// set); wrap entries in storage.FaultDevice to inject faults. Nil
	// entries and a nil slice default to fresh MemDevices.
	Devices []storage.Device
	// ManifestDevice holds the manifest + checkpointed partials (shadow
	// generations). Nil defaults to a fresh MemDevice.
	ManifestDevice storage.Device
	// DownThreshold is the number of consecutive failed operations that
	// turns a shard Down (fast-fail). Default 2; minimum 1.
	DownThreshold int
	// OpTickBudget bounds the virtual ticks one shard may spend on one
	// scatter operation — the deterministic stand-in for a timeout. An
	// operation that runs past it is discarded as timed out even if it
	// eventually succeeded. 0 = unlimited.
	OpTickBudget int64
	// Registry receives the shard.* counters and the per-label
	// storage.fault.* / storage.retry.* families. Nil disables.
	Registry *obs.Registry
	// Events receives health transitions and degraded-answer events.
	Events *obs.EventLog
}

// shardState is one shard: its device stack, colstore image, pool, and
// health. Health fields are guarded by Store.mu; the device/pool/file
// are internally synchronized and safe for concurrent scatters.
type shardState struct {
	index int
	label string
	dev   storage.Device
	fault *storage.FaultDevice // non-nil when dev is fault-wrapped
	pool  *storage.BufferPool
	file  *colstore.File
	epool *exec.Pool
	// chunks are the global chunk ranges this shard owns, ascending;
	// the shard's rows are their concatenation in that order.
	chunks []chunkRef
	rows   int

	health  Health // guarded by Store.mu
	fails   int    // guarded by Store.mu; consecutive failures
	ckptGen uint64 // guarded by Store.mu; shadow generation of the last checkpointed partials
}

// chunkRef ties a global chunk to its slice of the shard-local rows.
type chunkRef struct {
	global   int // global chunk index
	localLo  int // offset into the shard's local row order
	localLen int
}

// Store is a sharded view backing. All exported methods are safe for
// concurrent use: scatters run lock-free against the internally
// synchronized shard stacks, and health/bookkeeping updates take mu.
type Store struct {
	mu     sync.Mutex
	name   string
	rows   int
	chunk  int
	policy Policy
	cols   []string // numeric column names, schema order
	schema *dataset.Schema
	shards []*shardState
	budget int64
	downAt int

	// Checkpointed partial aggregates + manifest, on the manifest device
	// with PR 2's shadow-generation commit protocol.
	manPool  *storage.BufferPool
	manStore *summary.Store
	partials *summary.DB

	met    storeMetrics
	events *obs.EventLog
	tracer *obs.Tracer
	reg    *obs.Registry
}

// storeMetrics caches the shard.* instrument handles (nil-safe).
type storeMetrics struct {
	scatters, degraded, stale *obs.Counter
	rowsMissing, failures     *obs.Counter
	retries, timeouts         *obs.Counter
	down                      *obs.Gauge
}

// New partitions ds across cfg.Shards devices and returns the store.
// The dataset is the copy of record being sharded (typically a view's
// materialized rows); each shard's colstore image holds exactly the
// rows of the chunks placed on it, concatenated in ascending global
// chunk order.
func New(name string, ds *dataset.Dataset, cfg Config) (*Store, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Chunk <= 0 {
		cfg.Chunk = exec.DefaultChunk
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 64
	}
	if cfg.DownThreshold <= 0 {
		cfg.DownThreshold = 2
	}
	if cfg.Devices != nil && len(cfg.Devices) != cfg.Shards {
		return nil, fmt.Errorf("shard: %d devices for %d shards", len(cfg.Devices), cfg.Shards)
	}
	rows := ds.Rows()
	ranges := exec.Chunks(rows, cfg.Chunk)
	s := &Store{
		name:   name,
		rows:   rows,
		chunk:  cfg.Chunk,
		policy: cfg.Policy,
		schema: ds.Schema(),
		budget: cfg.OpTickBudget,
		downAt: cfg.DownThreshold,
		events: cfg.Events,
		reg:    cfg.Registry,
	}
	for c := 0; c < ds.Schema().Len(); c++ {
		s.cols = append(s.cols, ds.Schema().At(c).Name)
	}
	if cfg.Registry != nil {
		s.met = storeMetrics{
			scatters:    cfg.Registry.Counter(obs.MShardScatters),
			degraded:    cfg.Registry.Counter(obs.MShardDegraded),
			stale:       cfg.Registry.Counter(obs.MShardStalePartials),
			rowsMissing: cfg.Registry.Counter(obs.MShardRowsMissing),
			failures:    cfg.Registry.Counter(obs.MShardFailures),
			retries:     cfg.Registry.Counter(obs.MShardRetries),
			timeouts:    cfg.Registry.Counter(obs.MShardTimeouts),
			down:        cfg.Registry.Gauge(obs.MShardDown),
		}
	}

	// Assign chunks, then build each shard's sub-dataset in ascending
	// global chunk order so local offsets recover global positions.
	perShard := make([][]int, cfg.Shards)
	for c := range ranges {
		i := cfg.Policy.shardFor(c, len(ranges), cfg.Shards)
		perShard[i] = append(perShard[i], c)
	}
	manifest := &Manifest{
		View:   name,
		Rows:   rows,
		Chunk:  cfg.Chunk,
		Policy: cfg.Policy,
		Shards: make([]ManifestShard, cfg.Shards),
	}
	for i := 0; i < cfg.Shards; i++ {
		var dev storage.Device
		if cfg.Devices != nil && cfg.Devices[i] != nil {
			dev = cfg.Devices[i]
		} else {
			dev = storage.NewMemDevice(storage.DefaultDiskCost())
		}
		sh := &shardState{
			index: i,
			label: fmt.Sprintf("shard%d", i),
			dev:   dev,
			epool: exec.New(cfg.Workers),
		}
		if fd, ok := dev.(*storage.FaultDevice); ok {
			sh.fault = fd
			if cfg.Registry != nil {
				fd.WithMetrics(cfg.Registry)
			}
		}
		sh.pool = storage.NewBufferPool(dev, cfg.PoolPages)
		sh.pool.SetLabel(sh.label)

		sub := dataset.New(ds.Schema())
		sub.SetName(fmt.Sprintf("%s/%s", name, sh.label))
		lo := 0
		for _, c := range perShard[i] {
			r := ranges[c]
			for row := r.Lo; row < r.Hi; row++ {
				if err := sub.Append(ds.RowAt(row).Clone()); err != nil {
					return nil, fmt.Errorf("shard: building %s: %w", sh.label, err)
				}
			}
			sh.chunks = append(sh.chunks, chunkRef{global: c, localLo: lo, localLen: r.Len()})
			lo += r.Len()
		}
		sh.rows = lo
		file, err := colstore.Load(sh.pool, sub, colstore.Options{})
		if err != nil {
			return nil, fmt.Errorf("shard: loading %s: %w", sh.label, err)
		}
		sh.file = file
		s.shards = append(s.shards, sh)
		manifest.Shards[i] = ManifestShard{
			Rows:   lo,
			Chunks: append([]int(nil), perShard[i]...),
		}
	}

	// The manifest + partial-aggregate checkpoint store, committed with
	// PR 2's ping-pong shadow generations.
	manDev := cfg.ManifestDevice
	if manDev == nil {
		manDev = storage.NewMemDevice(storage.DefaultDiskCost())
	}
	s.manPool = storage.NewBufferPool(manDev, cfg.PoolPages)
	s.manPool.SetLabel("manifest")
	manStore, err := summary.NewStore(s.manPool)
	if err != nil {
		return nil, fmt.Errorf("shard: manifest store: %w", err)
	}
	s.manStore = manStore
	s.partials = summary.NewDB(nil)
	s.partials.StoreCustom(fnManifest, []string{name}, summary.TextOf(string(EncodeManifest(manifest))))
	if err := s.manStore.Checkpoint(s.partials); err != nil {
		return nil, fmt.Errorf("shard: manifest checkpoint: %w", err)
	}
	for _, sh := range s.shards {
		sh.ckptGen = s.manStore.Generation()
	}
	return s, nil
}

// SetTracer routes scatter spans (one per operation, one child per
// shard, charged in the shards' virtual ticks) into tr.
func (s *Store) SetTracer(tr *obs.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tr
}

// Metrics merges every shard pool's registry (global storage.* families
// plus the label-namespaced storage.retry.* twins) and the manifest
// pool's into one snapshot, so a system roll-up sees per-shard
// accounting the way core.DBMS merges view pools.
func (s *Store) Metrics() obs.Snapshot {
	snap := obs.NewSnapshot()
	for _, sh := range s.shards {
		snap.Merge(sh.pool.Metrics().Snapshot())
	}
	snap.Merge(s.manPool.Metrics().Snapshot())
	return snap
}

// Name returns the view name the store backs.
func (s *Store) Name() string { return s.name }

// Rows returns the total row count across shards.
func (s *Store) Rows() int { return s.rows }

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Chunk returns the global chunk size.
func (s *Store) Chunk() int { return s.chunk }

// ShardInfo is one shard's externally visible state.
type ShardInfo struct {
	Index    int
	Label    string
	Rows     int
	Chunks   int
	Health   Health
	Fails    int
	CkptGen  uint64
	Faults   storage.FaultCounts
	Retries  storage.RetryStats
	DevTicks int64
}

// Info snapshots every shard's health and fault/retry ledgers.
func (s *Store) Info() []ShardInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ShardInfo, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardInfo{
			Index:    sh.index,
			Label:    sh.label,
			Rows:     sh.rows,
			Chunks:   len(sh.chunks),
			Health:   sh.health,
			Fails:    sh.fails,
			CkptGen:  sh.ckptGen,
			Retries:  sh.pool.RetryStats(),
			DevTicks: sh.dev.Stats().Ticks,
		}
		if sh.fault != nil {
			out[i].Faults = sh.fault.Faults()
		}
	}
	return out
}

// Health returns shard i's current state.
func (s *Store) Health(i int) Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.shards) {
		return Down
	}
	return s.shards[i].health
}

// SetDown forces shard i down (true) or revives it (false). Reviving
// clears the failure streak; the next operation re-probes the device.
func (s *Store) SetDown(i int, down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.shards) {
		return
	}
	sh := s.shards[i]
	if down {
		sh.health = Down
		sh.fails = s.downAt
	} else {
		sh.health = Healthy
		sh.fails = 0
	}
	s.updateDownGaugeLocked()
	s.logHealth(sh)
}

// recordOutcome applies one operation outcome to shard health. Caller
// does not hold mu.
func (s *Store) recordOutcome(sh *shardState, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := sh.health
	if ok {
		sh.fails = 0
		sh.health = Healthy
	} else {
		sh.fails++
		if sh.fails >= s.downAt {
			sh.health = Down
		} else {
			sh.health = Degraded
		}
	}
	if sh.health != prev {
		s.updateDownGaugeLocked()
		s.logHealth(sh)
	}
}

// updateDownGaugeLocked refreshes the shard.down gauge. Caller holds mu.
func (s *Store) updateDownGaugeLocked() {
	n := int64(0)
	for _, sh := range s.shards {
		if sh.health == Down {
			n++
		}
	}
	s.met.down.Set(n)
}

// logHealth emits a health-transition event. Caller holds mu.
func (s *Store) logHealth(sh *shardState) {
	sev := obs.SevInfo
	if sh.health != Healthy {
		sev = obs.SevWarn
	}
	s.events.Log(obs.Event{
		Sev:  sev,
		Kind: "shard",
		Msg:  fmt.Sprintf("view %s %s -> %s (fails=%d)", s.name, sh.label, sh.health, sh.fails),
	})
}
