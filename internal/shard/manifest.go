package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"statdb/internal/storage"
)

// The shard manifest is the authoritative record of a view's placement:
// which chunks live on which shard, under what policy, and each shard's
// last checkpoint generation. It is persisted as an entry in the
// manifest store's summary.DB and committed through PR 2's ping-pong
// shadow-generation protocol, so a torn manifest write leaves the
// previous generation readable.
//
// The wire format is length-prefixed and CRC32C-sealed; DecodeManifest
// treats every malformed input as storage.ErrCorrupt (never a panic) —
// the FuzzDecodeShardManifest target enforces this.

// fnManifest and fnMoments/fnFreq are the partials DB function names.
const (
	fnManifest = "shard.manifest"
	fnMoments  = "shard.moments"
	fnFreq     = "shard.freq"
)

const (
	manifestMagic   = 0x5344534d // "SDSM"
	manifestVersion = 1
)

var manifestTable = crc32.MakeTable(crc32.Castagnoli)

// Manifest describes one sharded view's placement.
type Manifest struct {
	View   string
	Rows   int
	Chunk  int
	Policy Policy
	Shards []ManifestShard
}

// ManifestShard is one shard's placement record.
type ManifestShard struct {
	Rows   int
	Gen    uint64 // shadow generation of the shard's checkpointed partials
	Chunks []int  // global chunk indices owned, ascending
}

// EncodeManifest serializes m with a trailing CRC32C.
func EncodeManifest(m *Manifest) []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, manifestMagic)
	out = append(out, manifestVersion)
	out = binary.AppendUvarint(out, uint64(len(m.View)))
	out = append(out, m.View...)
	out = binary.AppendUvarint(out, uint64(m.Rows))
	out = binary.AppendUvarint(out, uint64(m.Chunk))
	out = append(out, byte(m.Policy))
	out = binary.AppendUvarint(out, uint64(len(m.Shards)))
	for _, sh := range m.Shards {
		out = binary.AppendUvarint(out, uint64(sh.Rows))
		out = binary.AppendUvarint(out, sh.Gen)
		out = binary.AppendUvarint(out, uint64(len(sh.Chunks)))
		prev := 0
		for _, c := range sh.Chunks {
			// Ascending indices delta-encode compactly.
			out = binary.AppendUvarint(out, uint64(c-prev))
			prev = c
		}
	}
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, manifestTable))
}

// corruptf wraps storage.ErrCorrupt with a description.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("shard: manifest: "+format+": %w", append(args, storage.ErrCorrupt)...)
}

// takeUvarint decodes one uvarint, bounding it by limit so a damaged
// length can never drive an oversized allocation.
func takeUvarint(buf []byte, limit uint64, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, corruptf("truncated %s", what)
	}
	if v > limit {
		return 0, nil, corruptf("%s %d out of range", what, v)
	}
	return v, buf[n:], nil
}

// DecodeManifest parses EncodeManifest's output, verifying the CRC and
// every structural invariant. All failures wrap storage.ErrCorrupt.
func DecodeManifest(buf []byte) (*Manifest, error) {
	if len(buf) < 4+1+4 {
		return nil, corruptf("short input (%d bytes)", len(buf))
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, manifestTable) != binary.LittleEndian.Uint32(tail) {
		return nil, corruptf("checksum mismatch")
	}
	if binary.LittleEndian.Uint32(body[:4]) != manifestMagic {
		return nil, corruptf("bad magic")
	}
	if body[4] != manifestVersion {
		return nil, corruptf("unsupported version %d", body[4])
	}
	rest := body[5:]
	nameLen, rest, err := takeUvarint(rest, uint64(len(rest)), "view name length")
	if err != nil {
		return nil, err
	}
	m := &Manifest{View: string(rest[:nameLen])}
	rest = rest[nameLen:]
	rows, rest, err := takeUvarint(rest, 1<<40, "row count")
	if err != nil {
		return nil, err
	}
	m.Rows = int(rows)
	chunk, rest, err := takeUvarint(rest, 1<<32, "chunk size")
	if err != nil {
		return nil, err
	}
	if chunk == 0 {
		return nil, corruptf("zero chunk size")
	}
	m.Chunk = int(chunk)
	if len(rest) == 0 {
		return nil, corruptf("truncated policy")
	}
	m.Policy = Policy(rest[0])
	if m.Policy != PlaceRoundRobin && m.Policy != PlaceRange {
		return nil, corruptf("unknown policy %d", rest[0])
	}
	rest = rest[1:]
	numChunks := (m.Rows + m.Chunk - 1) / m.Chunk
	nShards, rest, err := takeUvarint(rest, uint64(len(rest))+1, "shard count")
	if err != nil {
		return nil, err
	}
	if nShards == 0 {
		return nil, corruptf("zero shards")
	}
	seen := 0
	for i := uint64(0); i < nShards; i++ {
		var sh ManifestShard
		var v uint64
		if v, rest, err = takeUvarint(rest, uint64(m.Rows), "shard rows"); err != nil {
			return nil, err
		}
		sh.Rows = int(v)
		if sh.Gen, rest, err = takeUvarint(rest, 1<<62, "generation"); err != nil {
			return nil, err
		}
		var nc uint64
		if nc, rest, err = takeUvarint(rest, uint64(numChunks), "chunk count"); err != nil {
			return nil, err
		}
		prev, first := 0, true
		for j := uint64(0); j < nc; j++ {
			var d uint64
			if d, rest, err = takeUvarint(rest, uint64(numChunks), "chunk delta"); err != nil {
				return nil, err
			}
			c := prev + int(d)
			if !first && d == 0 {
				return nil, corruptf("non-ascending chunk index %d", c)
			}
			if c >= numChunks {
				return nil, corruptf("chunk index %d beyond %d chunks", c, numChunks)
			}
			sh.Chunks = append(sh.Chunks, c)
			prev, first = c, false
		}
		seen += len(sh.Chunks)
		m.Shards = append(m.Shards, sh)
	}
	if len(rest) != 0 {
		return nil, corruptf("%d trailing bytes", len(rest))
	}
	if seen != numChunks {
		return nil, corruptf("%d chunks placed, want %d", seen, numChunks)
	}
	return m, nil
}

// Manifest returns the store's current manifest (decoded from the
// partials DB, so it reflects the last checkpointed generation set).
func (s *Store) Manifest() (*Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.manifestLocked()
}

func (s *Store) manifestLocked() (*Manifest, error) {
	r, ok := s.partials.Lookup(fnManifest, s.name)
	if !ok {
		return nil, corruptf("no manifest entry for view %q", s.name)
	}
	return DecodeManifest([]byte(r.Text))
}
