package shard

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"statdb/internal/dataset"
	"statdb/internal/exec"
	"statdb/internal/obs"
	"statdb/internal/storage"
)

// testDataset builds rows of one float and one int column with a few
// missing cells, deterministic in n.
func testDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	ds := dataset.New(dataset.MustSchema(
		dataset.Attribute{Name: "x", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "g", Kind: dataset.KindInt},
	))
	ds.SetName("t")
	for i := 0; i < n; i++ {
		x := float64(i%997)*0.5 - 100
		if err := ds.Append(dataset.Row{dataset.Float(x), dataset.Int(int64(i % 13))}); err != nil {
			t.Fatal(err)
		}
		if i%101 == 0 {
			if err := ds.MarkMissing(i, "x"); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ds
}

func TestHealthyPathBitIdentical(t *testing.T) {
	const rows, chunk = 8000, 512
	ds := testDataset(t, rows)
	xs, valid, err := ds.NumericByName("x")
	if err != nil {
		t.Fatal(err)
	}
	ref := exec.ColumnMoments(exec.New(4), xs, valid, chunk)
	refFreq := exec.ColumnFreq(exec.New(4), xs, valid, chunk)

	for _, pol := range []Policy{PlaceRoundRobin, PlaceRange} {
		for _, shards := range []int{1, 2, 4, 5} {
			st, err := New("t", ds, Config{Shards: shards, Chunk: chunk, Policy: pol})
			if err != nil {
				t.Fatalf("%v/%d: %v", pol, shards, err)
			}
			got, rep, err := st.Moments("x")
			if err != nil {
				t.Fatalf("%v/%d moments: %v", pol, shards, err)
			}
			if rep.Degraded() || len(rep.Answered) != shards {
				t.Fatalf("%v/%d healthy report = %s", pol, shards, rep)
			}
			if got != ref {
				t.Fatalf("%v/%d moments = %+v, want bit-identical %+v", pol, shards, got, ref)
			}
			f, _, err := st.Freq("x")
			if err != nil {
				t.Fatal(err)
			}
			if len(f) != len(refFreq) {
				t.Fatalf("freq has %d values, want %d", len(f), len(refFreq))
			}
			for v, c := range refFreq {
				if f[v] != c {
					t.Fatalf("freq[%v] = %d, want %d", v, f[v], c)
				}
			}
			mat, mrep, err := st.Materialize()
			if err != nil || mrep.Degraded() {
				t.Fatalf("materialize: %v (%s)", err, mrep)
			}
			if mat.Rows() != rows {
				t.Fatalf("materialized %d rows, want %d", mat.Rows(), rows)
			}
			for i := 0; i < rows; i += 379 {
				for c := 0; c < 2; c++ {
					a, b := mat.Cell(i, c), ds.Cell(i, c)
					if a.String() != b.String() {
						t.Fatalf("row %d col %d = %v, want %v", i, c, a, b)
					}
				}
			}
		}
	}
}

// faultedStore builds a 4-shard store whose shard 1 device injects
// faults per cfg once enabled; injection is disabled during loading.
func faultedStore(t *testing.T, ds *dataset.Dataset, fcfg storage.FaultConfig, cfg Config) (*Store, *storage.FaultDevice) {
	t.Helper()
	cfg.Shards = 4
	fcfg.Label = "shard1"
	fd := storage.NewFaultDevice(storage.NewMemDevice(storage.DefaultDiskCost()), fcfg)
	fd.SetDisabled(true)
	cfg.Devices = []storage.Device{nil, fd, nil, nil}
	st, err := New("t", ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, fd
}

func TestDegradedFallsBackToStalePartials(t *testing.T) {
	const rows, chunk = 6000, 512
	ds := testDataset(t, rows)
	reg := obs.NewRegistry()
	obs.RegisterBaseline(reg)
	st, fd := faultedStore(t, ds, storage.FaultConfig{Seed: 7, ReadTransientRate: 1},
		Config{Chunk: chunk, PoolPages: 4, Registry: reg})
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantGen := st.Info()[1].CkptGen
	fd.SetDisabled(false)

	healthy, err := New("t", ds, Config{Shards: 1, Chunk: chunk})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := healthy.Moments("x")
	if err != nil {
		t.Fatal(err)
	}

	got, rep, err := st.Moments("x")
	if err != nil {
		t.Fatalf("degraded read must not error: %v", err)
	}
	if !rep.Degraded() || len(rep.Stale) != 1 || rep.Stale[0] != 1 {
		t.Fatalf("report = %s, want shard 1 stale", rep)
	}
	if rep.StaleGens[1] != wantGen {
		t.Fatalf("stale generation = %d, want %d", rep.StaleGens[1], wantGen)
	}
	if rep.RowsMissing != 0 {
		t.Fatalf("rows missing = %d with a checkpoint present", rep.RowsMissing)
	}
	// The stale partial predates no updates, so every observation is
	// still accounted for (merge order differs; counts must not).
	if got.N != ref.N || got.Missing != ref.Missing || got.Min != ref.Min || got.Max != ref.Max {
		t.Fatalf("degraded moments = %+v, want same support as %+v", got, ref)
	}
	if st.Health(1) == Healthy {
		t.Fatal("shard 1 still healthy after failing")
	}
	if v := reg.Counter(obs.MShardDegraded).Value(); v == 0 {
		t.Fatal("shard.degraded counter did not move")
	}
	if v := reg.Counter(obs.MShardStalePartials).Value(); v == 0 {
		t.Fatal("shard.stale_partials counter did not move")
	}
	if v := reg.Counter(obs.LabeledName(obs.MFaultReadTransient, "shard1")).Value(); v == 0 {
		t.Fatal("labeled fault counter did not move")
	}
}

func TestDegradedWithoutCheckpointReportsRowsMissing(t *testing.T) {
	const rows, chunk = 6000, 512
	ds := testDataset(t, rows)
	st, fd := faultedStore(t, ds, storage.FaultConfig{Seed: 7, ReadTransientRate: 1},
		Config{Chunk: chunk, PoolPages: 4})
	fd.SetDisabled(false)

	got, rep, err := st.Moments("x")
	if err != nil {
		t.Fatalf("degraded read must not error: %v", err)
	}
	wantMissing := st.Info()[1].Rows
	if len(rep.Missing) != 1 || rep.Missing[0] != 1 || rep.RowsMissing != wantMissing {
		t.Fatalf("report = %s, want shard 1 missing %d rows", rep, wantMissing)
	}
	if got.N+got.Missing != int64(rows-wantMissing) {
		t.Fatalf("partial answer covers %d rows, want %d", got.N+got.Missing, rows-wantMissing)
	}

	mat, mrep, err := st.Materialize()
	if err != nil {
		t.Fatalf("degraded materialize must not error: %v", err)
	}
	if mat.Rows() != rows-wantMissing || mrep.RowsMissing != wantMissing {
		t.Fatalf("materialized %d rows (report %s), want %d", mat.Rows(), mrep, rows-wantMissing)
	}
}

func TestDownShardFastFails(t *testing.T) {
	const rows, chunk = 4000, 512
	ds := testDataset(t, rows)
	st, fd := faultedStore(t, ds, storage.FaultConfig{Seed: 3, ReadTransientRate: 1},
		Config{Chunk: chunk, PoolPages: 4, DownThreshold: 2})
	fd.SetDisabled(false)

	for i := 0; i < 2; i++ {
		if _, _, err := st.Moments("x"); err != nil {
			t.Fatal(err)
		}
	}
	if h := st.Health(1); h != Down {
		t.Fatalf("health after 2 failures = %v, want down", h)
	}
	before := st.Info()[1].DevTicks
	if _, rep, err := st.Moments("x"); err != nil || len(rep.Missing) != 1 {
		t.Fatalf("down read: %v (%s)", err, rep)
	}
	if after := st.Info()[1].DevTicks; after != before {
		t.Fatalf("down shard did %d ticks of I/O; fast-fail must skip the device", after-before)
	}

	fd.SetDisabled(true)
	st.SetDown(1, false)
	if _, rep, err := st.Moments("x"); err != nil || rep.Degraded() {
		t.Fatalf("revived read: %v (%s)", err, rep)
	}
	if h := st.Health(1); h != Healthy {
		t.Fatalf("health after revive = %v", h)
	}
}

func TestOpTickBudgetTimesOut(t *testing.T) {
	const rows, chunk = 4000, 512
	ds := testDataset(t, rows)
	st, err := New("t", ds, Config{Shards: 4, Chunk: chunk, PoolPages: 2, OpTickBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := st.Moments("x")
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("all-timeout scatter error = %v, want ErrShardDown", err)
	}
	if rep.Timeouts != 4 || len(rep.Answered) != 0 {
		t.Fatalf("report = %s, want 4 timeouts", rep)
	}

	// With checkpointed partials the same total outage degrades instead.
	st2, err := New("t", ds, Config{Shards: 4, Chunk: chunk, PoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st2.budget = 1
	got, rep, err := st2.Moments("x")
	if err != nil {
		t.Fatalf("stale fallback errored: %v", err)
	}
	if len(rep.Stale) != 4 || rep.RowsMissing != 0 {
		t.Fatalf("report = %s, want 4 stale shards", rep)
	}
	if got.N+got.Missing != rows {
		t.Fatalf("stale answer covers %d rows, want %d", got.N+got.Missing, rows)
	}
}

func TestConcurrentScatterGatherUnderFaults(t *testing.T) {
	const rows, chunk = 6000, 512
	ds := testDataset(t, rows)
	reg := obs.NewRegistry()
	st, fd := faultedStore(t, ds, storage.FaultConfig{Seed: 11, ReadTransientRate: 0.12},
		Config{Chunk: chunk, PoolPages: 4, Workers: 2, Registry: reg, DownThreshold: 64})
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fd.SetDisabled(false)

	ref, _, err := st.Moments("x")
	if err != nil {
		t.Fatal(err)
	}
	// The continuous profiler rides the same storm: every worker folds
	// the completed scatter trees into one shared ring while a reader
	// merges and renders — the /profilez path against concurrent
	// degraded queries (this test runs under `make race`).
	tr := obs.NewTracer()
	st.SetTracer(tr)
	ring := obs.NewProfileRing(16)
	profDone := make(chan struct{})
	profReader := make(chan struct{})
	go func() {
		defer close(profReader)
		for {
			select {
			case <-profDone:
				return
			default:
			}
			for _, v := range ring.Verbs() {
				_ = ring.Merged(v)
			}
			var b strings.Builder
			_ = ring.WriteText(&b, 5)
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				m, rep, err := st.Moments("x")
				if err != nil {
					errs <- fmt.Errorf("worker %d moments: %v", g, err)
					return
				}
				for _, root := range tr.Recent() {
					ring.Add("compute", obs.FoldSpan(root))
				}
				// Transient faults recover inside the pool; a degraded
				// answer (stale fallback) is also legitimate. Either way
				// the support must be complete.
				if m.N+m.Missing != ref.N+ref.Missing && rep.RowsMissing == 0 {
					errs <- fmt.Errorf("worker %d: support %d, want %d (%s)", g, m.N+m.Missing, ref.N+ref.Missing, rep)
					return
				}
				if _, _, err := st.Freq("g"); err != nil {
					errs <- fmt.Errorf("worker %d freq: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(profDone)
	<-profReader
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Concurrent queries interleave on one tracer stack, so in-storm
	// roots may surface late or merge into one tree (attribution
	// degrades, never safety). One serial query after the storm always
	// emits a root, so the final fold is deterministic.
	if _, _, err := st.Moments("x"); err != nil {
		t.Fatal(err)
	}
	for _, root := range tr.Recent() {
		ring.Add("compute", obs.FoldSpan(root))
	}
	if merged := ring.Merged("compute"); merged.Queries == 0 {
		t.Error("hammer folded no profiles into the ring")
	}
}

// TestScatterStitchesShardSpans pins the cross-shard span stitching: a
// scatter-gather query yields one "shard.scatter" root whose children
// are the per-shard worker spans in shard order, each charging exactly
// its device ticks — so the children sum to the root total — and two
// identically built stores render bit-identical trees regardless of
// worker scheduling.
func TestScatterStitchesShardSpans(t *testing.T) {
	const rows, chunk = 6000, 512
	ds := testDataset(t, rows)
	run := func() (*obs.Span, string) {
		st, err := New("t", ds, Config{Shards: 4, Chunk: chunk, PoolPages: 4})
		if err != nil {
			t.Fatal(err)
		}
		tr := obs.NewTracer()
		st.SetTracer(tr)
		if _, _, err := st.Moments("x"); err != nil {
			t.Fatal(err)
		}
		roots := tr.Recent()
		if len(roots) != 1 {
			t.Fatalf("recent roots = %d, want 1", len(roots))
		}
		var b strings.Builder
		if err := obs.WriteTree(&b, roots[0]); err != nil {
			t.Fatal(err)
		}
		return roots[0], b.String()
	}
	root, tree := run()
	if root.Name() != "shard.scatter" {
		t.Fatalf("root = %s, want shard.scatter", root.Name())
	}
	kids := root.Children()
	if len(kids) != 4 {
		t.Fatalf("root has %d children, want one per shard:\n%s", len(kids), tree)
	}
	var sum int64
	for i, k := range kids {
		if want := fmt.Sprintf("shard%d", i); k.Name() != want {
			t.Errorf("child %d = %s, want %s (join order = shard order)", i, k.Name(), want)
		}
		if k.Total() <= 0 {
			t.Errorf("shard %d charged %d ticks, want > 0 (cold pool)", i, k.Total())
		}
		sum += k.Total()
		attrs := map[string]string{}
		for _, a := range k.Attrs() {
			attrs[a.Key] = a.Value
		}
		if attrs["health"] != "healthy" {
			t.Errorf("shard %d health attr = %q", i, attrs["health"])
		}
		if attrs["ticks"] == "" || attrs["pages"] == "" {
			t.Errorf("shard %d missing ticks/pages attrs: %v", i, attrs)
		}
		if len(k.Children()) == 0 {
			t.Errorf("shard %d has no per-range spans", i)
		}
	}
	// The acceptance invariant: per-shard children account for the whole
	// query exactly — scatter itself charges nothing.
	if sum != root.Total() {
		t.Errorf("shard children sum %d != root total %d:\n%s", sum, root.Total(), tree)
	}
	if _, again := run(); again != tree {
		t.Errorf("stitched tree varies across identical runs:\n%s\nvs\n%s", tree, again)
	}
}

// TestScatterSpansUnderFaults checks the stitched tree's fault
// vocabulary: a faulted shard's span carries its retry and error
// attrs, and once Down the shard appears as a zero-tick fast-fail
// child recorded by the coordinator.
func TestScatterSpansUnderFaults(t *testing.T) {
	const rows, chunk = 6000, 512
	ds := testDataset(t, rows)
	st, fd := faultedStore(t, ds, storage.FaultConfig{Seed: 17, ReadTransientRate: 1},
		Config{Chunk: chunk, PoolPages: 4, DownThreshold: 1})
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	st.SetTracer(tr)
	fd.SetDisabled(false)

	attrsOf := func(root *obs.Span, i int) map[string]string {
		m := map[string]string{}
		for _, a := range root.Children()[i].Attrs() {
			m[a.Key] = a.Value
		}
		return m
	}
	if _, rep, err := st.Moments("x"); err != nil || !rep.Degraded() {
		t.Fatalf("first faulted query: %v (%s)", err, rep)
	}
	roots := tr.Recent()
	first := roots[len(roots)-1]
	a1 := attrsOf(first, 1)
	if a1["retries"] != "1" || a1["err"] == "" {
		t.Errorf("faulted shard attrs = %v, want retries=1 and err", a1)
	}

	if _, rep, err := st.Moments("x"); err != nil || !rep.Degraded() {
		t.Fatalf("down-shard query: %v (%s)", err, rep)
	}
	roots = tr.Recent()
	second := roots[len(roots)-1]
	if len(second.Children()) != 4 {
		t.Fatalf("down-shard tree has %d children, want the fast-fail recorded", len(second.Children()))
	}
	a2 := attrsOf(second, 1)
	if a2["ticks"] != "0" || a2["health"] != "down" || a2["err"] == "" {
		t.Errorf("down shard attrs = %v, want zero-tick down fast-fail", a2)
	}
	var sum int64
	for _, k := range second.Children() {
		sum += k.Total()
	}
	if sum != second.Total() {
		t.Errorf("degraded children sum %d != root total %d", sum, second.Total())
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	const rows, chunk = 4000, 512
	ds := testDataset(t, rows)
	manDev := storage.NewMemDevice(storage.DefaultDiskCost())
	st, err := New("t", ds, Config{Shards: 3, Chunk: chunk, ManifestDevice: manDev})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if man.View != "t" || man.Rows != rows || len(man.Shards) != 3 {
		t.Fatalf("manifest = %+v", man)
	}

	db, rep, gen, err := RestorePartials(manDev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 || rep.CorruptPages != 0 {
		t.Fatalf("restore report = %s", rep)
	}
	if gen != 2 {
		t.Fatalf("restored generation = %d, want 2 (create + checkpoint)", gen)
	}
	r, ok := db.Lookup(fnManifest, "t")
	if !ok {
		t.Fatal("restored DB has no manifest")
	}
	man2, err := DecodeManifest([]byte(r.Text))
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range man2.Shards {
		if sh.Gen != 2 {
			t.Fatalf("shard %d checkpoint gen = %d, want 2", i, sh.Gen)
		}
	}
	if _, ok := db.Lookup(fnMoments, shardAttr("x", 0)...); !ok {
		t.Fatal("restored DB has no moments partial for shard 0")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		View: "census", Rows: 10000, Chunk: 512, Policy: PlaceRange,
		Shards: []ManifestShard{
			{Rows: 5120, Gen: 4, Chunks: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
			{Rows: 4880, Gen: 7, Chunks: []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}},
		},
	}
	buf := EncodeManifest(m)
	got, err := DecodeManifest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.View != m.View || got.Rows != m.Rows || got.Chunk != m.Chunk || got.Policy != m.Policy {
		t.Fatalf("decoded = %+v", got)
	}
	for i := range m.Shards {
		if got.Shards[i].Gen != m.Shards[i].Gen || len(got.Shards[i].Chunks) != len(m.Shards[i].Chunks) {
			t.Fatalf("shard %d = %+v, want %+v", i, got.Shards[i], m.Shards[i])
		}
	}

	// Any single-byte damage must surface as ErrCorrupt.
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		if _, err := DecodeManifest(bad); err != nil && !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("flip at %d: error %v does not wrap ErrCorrupt", i, err)
		}
	}
	for i := 0; i < len(buf); i += 7 {
		if _, err := DecodeManifest(buf[:i]); !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("truncation to %d: %v", i, err)
		}
	}
}
