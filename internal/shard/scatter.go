package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"statdb/internal/dataset"
	"statdb/internal/exec"
	"statdb/internal/obs"
)

// Report is the provenance of one scatter-gather answer — the sharded
// analogue of summary.LoadReport. A degraded answer is still an answer;
// the report says exactly which shards stood behind it and what was
// substituted or lost.
type Report struct {
	Shards   int   // shards in the placement
	Answered []int // shards that answered live, ascending
	Stale    []int // shards answered from stale checkpointed partials
	Missing  []int // shards with no answer at all
	// RowsMissing counts rows absent from the answer (shards in Missing,
	// plus Stale shards of a materialization — partials cannot rebuild
	// rows).
	RowsMissing int
	// StaleGens records, per stale shard, the shadow generation of the
	// checkpoint its partial came from.
	StaleGens map[int]uint64
	Retries   int   // shard-level retries spent
	Timeouts  int   // shards discarded for exceeding the op tick budget
	Ticks     int64 // critical path: the slowest shard's virtual ticks
}

// Degraded reports whether the answer is anything less than complete
// and live.
func (r Report) Degraded() bool { return len(r.Stale) > 0 || len(r.Missing) > 0 }

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "answered %d/%d", len(r.Answered), r.Shards)
	if len(r.Stale) > 0 {
		gens := make([]string, 0, len(r.Stale))
		for _, i := range r.Stale {
			gens = append(gens, fmt.Sprintf("shard%d@gen%d", i, r.StaleGens[i]))
		}
		fmt.Fprintf(&b, " stale=[%s]", strings.Join(gens, " "))
	}
	if len(r.Missing) > 0 {
		fmt.Fprintf(&b, " missing=%v rows_missing=%d", r.Missing, r.RowsMissing)
	}
	if r.Timeouts > 0 {
		fmt.Fprintf(&b, " timeouts=%d", r.Timeouts)
	}
	fmt.Fprintf(&b, " ticks=%d", r.Ticks)
	return b.String()
}

// outcome is one shard's result of one scatter operation.
type outcome struct {
	skipped  bool // down before the op: fast-failed without I/O
	retried  bool
	timedOut bool
	err      error
	ticks    int64
}

// runShardOp executes op against sh with the bounded failure protocol:
// the pool's own transient retry underneath, one shard-level retry on
// top, and the virtual-tick budget as a deterministic timeout — an op
// that ran past the budget is discarded even if it succeeded, because
// the gather will not wait for it. The whole protocol (both attempts)
// runs inside one span on tr — the shard's adopted child tracer — so
// the shard's device ticks are charged where the work happened and
// metered against the owning query's budget live; the span carries the
// shard's ticks/pages/retries attrs. The returned span is the handle
// the coordinator decorates post-join (health, err).
func (s *Store) runShardOp(tr *obs.Tracer, sh *shardState, op func(h exec.SpanHook) error) (outcome, *obs.Span) {
	var o outcome
	sp := tr.Begin(sh.label)
	// Ops that fan ranges across the shard's own pool stitch per-range
	// spans under the shard span through this hook.
	h := exec.SpanHook{Tracer: tr, Parent: sp, Name: "range"}
	start := sh.dev.Stats()
	err := op(h)
	o.ticks = sh.dev.Stats().Ticks - start.Ticks
	over := s.budget > 0 && o.ticks > s.budget
	if err != nil && !over {
		o.retried = true
		err = op(h)
		o.ticks = sh.dev.Stats().Ticks - start.Ticks
		over = s.budget > 0 && o.ticks > s.budget
	}
	if over {
		o.timedOut = true
		if err == nil {
			err = fmt.Errorf("shard: %s exceeded op budget of %d ticks (spent %d)", sh.label, s.budget, o.ticks)
		}
	}
	o.err = err
	sp.Charge(o.ticks)
	sp.SetAttr("ticks", fmt.Sprintf("%d", o.ticks))
	sp.SetAttr("pages", fmt.Sprintf("%d", sh.dev.Stats().Reads-start.Reads))
	if o.retried {
		sp.SetAttr("retries", "1")
	}
	sp.End()
	return o, sp
}

// scatter fans op out across all shards (one goroutine per shard — this
// package is on the statdb-vet goroutine allowlist), skipping Down
// shards without I/O, then applies health transitions and metric/trace
// bookkeeping in shard order. Each worker runs under its own adopted
// child tracer; the gather joins them in ascending shard order, so the
// stitched tree under "shard.scatter" — one child per shard, carrying
// its ticks/pages/retries/health — is identical regardless of worker
// scheduling. The returned outcomes are indexed by shard.
func (s *Store) scatter(name, col string, op func(sh *shardState, h exec.SpanHook) error) ([]outcome, *Report) {
	s.met.scatters.Inc()
	outs := make([]outcome, len(s.shards))
	span := s.tracer.Begin("shard.scatter",
		obs.Attr{Key: "view", Value: s.name}, obs.Attr{Key: "op", Value: name + " " + col})
	adopted := make([]*obs.Tracer, len(s.shards))
	spans := make([]*obs.Span, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		if s.Health(i) == Down {
			outs[i] = outcome{skipped: true, err: fmt.Errorf("shard: %s: %w", sh.label, ErrShardDown)}
			continue
		}
		adopted[i] = s.tracer.Adopt(span)
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			outs[i], spans[i] = s.runShardOp(adopted[i], sh, func(h exec.SpanHook) error { return op(sh, h) })
		}(i, sh)
	}
	wg.Wait()

	rep := &Report{Shards: len(s.shards), StaleGens: map[int]uint64{}}
	for i, sh := range s.shards {
		o := outs[i]
		if !o.skipped {
			s.recordOutcome(sh, o.err == nil)
		}
		if o.retried {
			rep.Retries++
			s.met.retries.Inc()
		}
		if o.timedOut {
			rep.Timeouts++
			s.met.timeouts.Inc()
		}
		if o.err == nil {
			rep.Answered = append(rep.Answered, i)
		} else if !o.skipped {
			s.met.failures.Inc()
		}
		if o.ticks > rep.Ticks {
			rep.Ticks = o.ticks
		}
		// Stitch the shard's spans under the scatter span (ascending
		// shard order — the deterministic join), then decorate with the
		// post-op state only the coordinator knows.
		child := spans[i]
		adopted[i].Join()
		if o.skipped {
			// A Down shard never spawned a worker; record the fast-fail
			// as a zero-tick child directly on the open scatter span.
			// (Attrs may still be set after End — only the stack slot
			// closes.)
			child = s.tracer.Begin(sh.label)
			child.SetAttr("ticks", "0")
			child.End()
		}
		child.SetAttr("health", s.Health(i).String())
		if o.err != nil {
			child.SetAttr("err", o.err.Error())
		}
	}
	span.End()
	return outs, rep
}

// finishReport applies the degraded-answer bookkeeping shared by every
// gather: metrics, event log. Call once the report is final.
func (s *Store) finishReport(name, col string, rep *Report) {
	if !rep.Degraded() {
		return
	}
	s.met.degraded.Inc()
	s.met.stale.Add(int64(len(rep.Stale)))
	s.met.rowsMissing.Add(int64(rep.RowsMissing))
	s.events.Log(obs.Event{
		Sev:  obs.SevWarn,
		Kind: "shard",
		Msg:  fmt.Sprintf("view %s degraded %s(%s): %s", s.name, name, col, rep),
	})
}

// gatherErr decides the error contract: a scatter that produced nothing
// at all (no live shard, no stale partial) over a non-empty view is
// ErrShardDown; anything partial is a degraded answer, not an error.
func (s *Store) gatherErr(rep *Report) error {
	if s.rows > 0 && len(rep.Answered) == 0 && len(rep.Stale) == 0 {
		return fmt.Errorf("shard: view %q: no shard answered: %w", s.name, ErrShardDown)
	}
	return nil
}

// Moments computes the whole-column moment aggregate for col by
// scatter-gather. Healthy path: every shard folds its global chunks in
// parallel on its own pool, and the gather left-folds the per-chunk
// partials in ascending global chunk order — the exact merge sequence
// of exec.ColumnMoments, so the answer is bit-identical to the
// unsharded parallel engine at the same chunk size. Degraded path:
// chunks of failed shards drop out of the fold; each failed shard's
// last checkpointed partial (when one exists) is merged afterward in
// ascending shard order, recorded as stale provenance; shards with no
// checkpoint contribute nothing and their rows are reported missing.
func (s *Store) Moments(col string) (exec.Moments, Report, error) {
	numChunks := len(exec.Chunks(s.rows, s.chunk))
	parts := make([]exec.Moments, numChunks)
	have := make([]bool, numChunks)
	outs, rep := s.scatter("moments", col, func(sh *shardState, h exec.SpanHook) error {
		return sh.foldColumn(h, col, func(global int, xs []float64, valid []bool) {
			parts[global] = exec.FoldMoments(xs, valid)
			have[global] = true
		})
	})

	// A failed shard's folds are void even when its op partially ran (a
	// timeout fires after the work): only successful shards' chunks may
	// enter the fold, or a stale fallback would double-count them.
	for i, sh := range s.shards {
		if outs[i].err != nil {
			for _, ref := range sh.chunks {
				have[ref.global] = false
			}
		}
	}
	var out exec.Moments
	first := true
	for c := 0; c < numChunks; c++ {
		if !have[c] {
			continue
		}
		if first {
			out, first = parts[c], false
		} else {
			out = exec.MergeMoments(out, parts[c])
		}
	}
	for i, sh := range s.shards {
		if outs[i].err == nil || sh.rows == 0 {
			continue
		}
		if v, gen, ok := s.stalePartial(fnMoments, col, i); ok {
			if m, err := decodeMoments(v); err == nil {
				if first {
					out, first = m, false
				} else {
					out = exec.MergeMoments(out, m)
				}
				rep.Stale = append(rep.Stale, i)
				rep.StaleGens[i] = gen
				continue
			}
		}
		rep.Missing = append(rep.Missing, i)
		rep.RowsMissing += sh.rows
	}
	s.finishReport("moments", col, rep)
	return out, *rep, s.gatherErr(rep)
}

// Freq tabulates col's frequency table by scatter-gather, merged in
// ascending global chunk order (bit-exact for any chunking: the merged
// multiset is order-insensitive). Degraded semantics match Moments.
func (s *Store) Freq(col string) (exec.Freq, Report, error) {
	numChunks := len(exec.Chunks(s.rows, s.chunk))
	parts := make([]exec.Freq, numChunks)
	outs, rep := s.scatter("freq", col, func(sh *shardState, h exec.SpanHook) error {
		return sh.foldColumn(h, col, func(global int, xs []float64, valid []bool) {
			parts[global] = exec.FoldFreq(xs, valid)
		})
	})

	for i, sh := range s.shards {
		if outs[i].err != nil {
			for _, ref := range sh.chunks {
				parts[ref.global] = nil
			}
		}
	}
	out := make(exec.Freq)
	for c := 0; c < numChunks; c++ {
		if parts[c] != nil {
			out = out.Merge(parts[c])
		}
	}
	for i, sh := range s.shards {
		if outs[i].err == nil || sh.rows == 0 {
			continue
		}
		if v, gen, ok := s.stalePartial(fnFreq, col, i); ok {
			if f, err := decodeFreq(v); err == nil {
				out = out.Merge(f)
				rep.Stale = append(rep.Stale, i)
				rep.StaleGens[i] = gen
				continue
			}
		}
		rep.Missing = append(rep.Missing, i)
		rep.RowsMissing += sh.rows
	}
	s.finishReport("freq", col, rep)
	return out, *rep, s.gatherErr(rep)
}

// foldColumn reads the shard's image of col and hands each owned global
// chunk's slice to fn, fanning chunks across the shard's own pool with
// per-range spans stitched under the shard's span via h. fn must only
// write state owned by the chunk (the scatter contract).
func (sh *shardState) foldColumn(h exec.SpanHook, col string, fn func(global int, xs []float64, valid []bool)) error {
	xs, valid, err := sh.file.NumericColumn(col) //lint:allow charge-tracking runShardOp charges the measured ticks around the whole op
	if err != nil {
		return err
	}
	ranges := make([]exec.Range, len(sh.chunks))
	for i, ref := range sh.chunks {
		ranges[i] = exec.Range{Lo: ref.localLo, Hi: ref.localLo + ref.localLen}
	}
	return sh.epool.RunRangesSpanned(ranges, h, func(c int, r exec.Range, sp *obs.Span) error {
		sp.SetAttr("chunk", fmt.Sprintf("%d", sh.chunks[c].global))
		fn(sh.chunks[c].global, xs[r.Lo:r.Hi], valid[r.Lo:r.Hi])
		return nil
	})
}

// Materialize rebuilds the view's rows by scatter-gather, in global row
// order. Rows on failed shards are absent from the result (stale
// aggregate partials cannot restore rows) and counted in the report;
// the healthy path returns every row, bit-identical to the unsharded
// dataset.
func (s *Store) Materialize() (*dataset.Dataset, Report, error) {
	subs := make([]*dataset.Dataset, len(s.shards))
	outs, rep := s.scatter("materialize", "*", func(sh *shardState, _ exec.SpanHook) error {
		sub, err := sh.file.Materialize()
		if err != nil {
			return err
		}
		subs[sh.index] = sub
		return nil
	})

	for i, sh := range s.shards {
		if outs[i].err == nil {
			continue
		}
		subs[i] = nil // a timed-out shard's rows are void even if produced
		if sh.rows > 0 {
			rep.Missing = append(rep.Missing, i)
			rep.RowsMissing += sh.rows
		}
	}

	// Reassemble global order: chunk -> (owner shard, local offset).
	type owner struct {
		shard   int
		localLo int
		length  int
	}
	numChunks := len(exec.Chunks(s.rows, s.chunk))
	owners := make([]owner, numChunks)
	for i, sh := range s.shards {
		for _, ref := range sh.chunks {
			owners[ref.global] = owner{shard: i, localLo: ref.localLo, length: ref.localLen}
		}
	}
	out := dataset.New(s.schema)
	out.SetName(s.name)
	for c := 0; c < numChunks; c++ {
		ow := owners[c]
		sub := subs[ow.shard]
		if sub == nil {
			continue // rows lost with their shard
		}
		for r := ow.localLo; r < ow.localLo+ow.length; r++ {
			if err := out.Append(sub.RowAt(r)); err != nil {
				return nil, *rep, fmt.Errorf("shard: gather row: %w", err)
			}
		}
	}
	sort.Ints(rep.Missing)
	s.finishReport("materialize", "*", rep)
	return out, *rep, s.gatherErr(rep)
}
