package shard

import (
	"fmt"
	"strconv"

	"statdb/internal/exec"
	"statdb/internal/storage"
	"statdb/internal/summary"
)

// Checkpointed partials: per (shard, column), the shard's merged Moments
// and frequency table, stored in the manifest device's summary.DB and
// committed with shadow generations. When a shard is down, the gather
// substitutes these — a stale-but-bounded answer, with the generation it
// came from recorded in the Report.

// maxFreqCheckpoint bounds the frequency tables worth checkpointing: a
// checkpointed record must fit one heap page (~4080 bytes; 16 bytes per
// distinct value). A column with more distinct values than this gets no
// freq fallback — its rows go missing from a degraded frequency answer
// instead (still a degraded answer, never an error).
const maxFreqCheckpoint = 192

// encodeMoments flattens a Moments partial into the 7-float vector
// layout [N, Missing, Sum, Mean, M2, Min, Max].
func encodeMoments(m exec.Moments) []float64 {
	return []float64{float64(m.N), float64(m.Missing), m.Sum, m.Mean, m.M2, m.Min, m.Max}
}

// decodeMoments parses encodeMoments's layout.
func decodeMoments(v []float64) (exec.Moments, error) {
	if len(v) != 7 {
		return exec.Moments{}, corruptf("moments vector of %d values, want 7", len(v))
	}
	return exec.Moments{
		N: int64(v[0]), Missing: int64(v[1]),
		Sum: v[2], Mean: v[3], M2: v[4], Min: v[5], Max: v[6],
	}, nil
}

// encodeFreq flattens a frequency table as [v1, c1, v2, c2, ...] in
// ascending value order (deterministic bytes for a deterministic table).
func encodeFreq(f exec.Freq) []float64 {
	values, counts := f.Sorted()
	out := make([]float64, 0, 2*len(values))
	for i, v := range values {
		out = append(out, v, float64(counts[i]))
	}
	return out
}

// decodeFreq parses encodeFreq's layout.
func decodeFreq(v []float64) (exec.Freq, error) {
	if len(v)%2 != 0 {
		return nil, corruptf("freq vector of odd length %d", len(v))
	}
	f := make(exec.Freq, len(v)/2)
	for i := 0; i < len(v); i += 2 {
		f[v[i]] += int64(v[i+1])
	}
	return f, nil
}

// shardAttr keys a (column, shard) partial in the partials DB.
func shardAttr(col string, shard int) []string {
	return []string{col, "shard" + strconv.Itoa(shard)}
}

// shardPartials folds every chunk the shard owns for column col,
// merging in ascending global chunk order, and tabulates the frequency
// table. Runs on the shard's own pool and device stack.
func (sh *shardState) shardPartials(col string) (exec.Moments, exec.Freq, error) {
	xs, valid, err := sh.file.NumericColumn(col)
	if err != nil {
		return exec.Moments{}, nil, err
	}
	var m exec.Moments
	for i, ref := range sh.chunks {
		part := exec.FoldMoments(xs[ref.localLo:ref.localLo+ref.localLen], valid[ref.localLo:ref.localLo+ref.localLen])
		if i == 0 {
			m = part
		} else {
			m = exec.MergeMoments(m, part)
		}
	}
	return m, exec.FoldFreq(xs, valid), nil
}

// Checkpoint recomputes every healthy shard's per-column partials,
// stores them (and the refreshed manifest) in the partials DB, and
// commits the whole set under the next shadow generation. Down shards
// keep their previous entries and generations — that is the point: the
// last good checkpoint is what a degraded read falls back to.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	live := make([]*shardState, 0, len(s.shards))
	for _, sh := range s.shards {
		if sh.health != Down {
			live = append(live, sh)
		}
	}
	s.mu.Unlock()

	for _, sh := range live {
		for _, col := range s.numericCols() {
			m, f, err := sh.shardPartials(col)
			if err != nil {
				return fmt.Errorf("shard: checkpoint %s %q: %w", sh.label, col, err)
			}
			s.partials.StoreCustom(fnMoments, shardAttr(col, sh.index), summary.VectorOf(encodeMoments(m)))
			if len(f) <= maxFreqCheckpoint {
				s.partials.StoreCustom(fnFreq, shardAttr(col, sh.index), summary.VectorOf(encodeFreq(f)))
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.manStore.Generation() + 1
	man := &Manifest{
		View: s.name, Rows: s.rows, Chunk: s.chunk, Policy: s.policy,
		Shards: make([]ManifestShard, len(s.shards)),
	}
	for i, sh := range s.shards {
		g := sh.ckptGen
		for _, l := range live {
			if l == sh {
				g = gen
			}
		}
		chunks := make([]int, len(sh.chunks))
		for j, ref := range sh.chunks {
			chunks[j] = ref.global
		}
		man.Shards[i] = ManifestShard{Rows: sh.rows, Gen: g, Chunks: chunks}
	}
	s.partials.StoreCustom(fnManifest, []string{s.name}, summary.TextOf(string(EncodeManifest(man))))
	if err := s.manStore.Checkpoint(s.partials); err != nil {
		return fmt.Errorf("shard: checkpoint commit: %w", err)
	}
	for _, sh := range live {
		sh.ckptGen = s.manStore.Generation()
	}
	return nil
}

// numericCols lists the column names usable as numeric aggregates.
func (s *Store) numericCols() []string {
	out := make([]string, 0, len(s.cols))
	for _, col := range s.cols {
		if _, _, err := s.shards[0].file.NumericColumn(col); err == nil {
			out = append(out, col)
		}
	}
	return out
}

// stalePartial fetches shard i's checkpointed partial for (fn, col).
// ok=false when none was ever checkpointed (or it was too large).
func (s *Store) stalePartial(fn, col string, i int) ([]float64, uint64, bool) {
	r, ok := s.partials.Lookup(fn, shardAttr(col, i)...)
	if !ok || r.Kind != summary.VectorResult {
		return nil, 0, false
	}
	s.mu.Lock()
	gen := s.shards[i].ckptGen
	s.mu.Unlock()
	return r.Vector, gen, true
}

// RestorePartials re-opens the manifest device's checkpoint store and
// loads the last committed generation into a fresh partials DB — the
// crash-recovery path. It returns the tolerant-load report (PR 2's
// LoadReport semantics: corrupt pages are skipped, damaged records
// dropped or marked stale, never a panic).
func RestorePartials(dev storage.Device, poolPages int) (*summary.DB, summary.LoadReport, uint64, error) {
	if poolPages <= 0 {
		poolPages = 64
	}
	pool := storage.NewBufferPool(dev, poolPages)
	st, err := summary.OpenStore(pool)
	if err != nil {
		return nil, summary.LoadReport{}, 0, err
	}
	db := summary.NewDB(nil)
	rep, err := st.Restore(db)
	if err != nil {
		return nil, rep, 0, err
	}
	return db, rep, st.Generation(), nil
}
