package shard

import (
	"errors"
	"testing"

	"statdb/internal/storage"
)

// FuzzDecodeShardManifest drives DecodeManifest with arbitrary bytes:
// the decoder must never panic, must wrap every rejection in
// storage.ErrCorrupt, and must round-trip anything it accepts.
func FuzzDecodeShardManifest(f *testing.F) {
	valid := EncodeManifest(&Manifest{
		View: "census", Rows: 2048, Chunk: 512, Policy: PlaceRoundRobin,
		Shards: []ManifestShard{
			{Rows: 1024, Gen: 3, Chunks: []int{0, 2}},
			{Rows: 1024, Gen: 2, Chunks: []int{1, 3}},
		},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("SDSM garbage"))
	mut := append([]byte(nil), valid...)
	mut[7] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("rejection %v does not wrap storage.ErrCorrupt", err)
			}
			return
		}
		// Accepted input: re-encoding the decoded manifest must itself
		// decode (the codec is internally consistent).
		if _, err := DecodeManifest(EncodeManifest(m)); err != nil {
			t.Fatalf("re-encode of accepted manifest rejected: %v", err)
		}
	})
}
