package rules

import (
	"errors"
	"testing"

	"statdb/internal/dataset"
)

func TestDefaultStrategies(t *testing.T) {
	m := NewManagementDB()
	cases := map[string]Strategy{
		"sum":       StrategyIncremental,
		"mean":      StrategyIncremental,
		"min":       StrategyIncremental,
		"median":    StrategyWindow,
		"q1":        StrategyWindow,
		"mode":      StrategyInvalidate,
		"histogram": StrategyInvalidate,
		"unknown":   StrategyInvalidate, // safe default
	}
	for fn, want := range cases {
		if got := m.StrategyFor(fn); got != want {
			t.Errorf("StrategyFor(%q) = %v, want %v", fn, got, want)
		}
	}
	m.SetStrategy("sum", StrategyRecompute)
	if got := m.StrategyFor("sum"); got != StrategyRecompute {
		t.Errorf("after SetStrategy: %v", got)
	}
}

func TestStrategyAndScopeStrings(t *testing.T) {
	if StrategyIncremental.String() != "incremental" || StrategyWindow.String() != "window" ||
		StrategyInvalidate.String() != "invalidate" || StrategyRecompute.String() != "recompute" {
		t.Error("strategy strings wrong")
	}
	if ScopeLocal.String() != "local" || ScopeGlobal.String() != "global" {
		t.Error("scope strings wrong")
	}
}

func localRule(view, attr string, inputs ...string) DerivedRule {
	return DerivedRule{
		View: view, Attr: attr, Inputs: inputs, Scope: ScopeLocal,
		Row: func(sch *dataset.Schema, row dataset.Row) dataset.Value { return dataset.Null },
	}
}

func TestDerivedRuleValidation(t *testing.T) {
	if err := (DerivedRule{}).Validate(); err == nil {
		t.Error("empty rule accepted")
	}
	if err := (DerivedRule{View: "v", Attr: "a"}).Validate(); err == nil {
		t.Error("rule without inputs accepted")
	}
	if err := (DerivedRule{View: "v", Attr: "a", Inputs: []string{"x"}, Scope: ScopeLocal}).Validate(); err == nil {
		t.Error("local rule without Row accepted")
	}
	if err := (DerivedRule{View: "v", Attr: "a", Inputs: []string{"x"}, Scope: ScopeGlobal}).Validate(); err == nil {
		t.Error("global rule without Column accepted")
	}
	if err := localRule("v", "a", "x").Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
}

func TestDerivedRuleRegistryAndTrigger(t *testing.T) {
	m := NewManagementDB()
	if err := m.AddDerivedRule(localRule("v", "LOG_SAL", "AVE_SALARY")); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDerivedRule(localRule("v", "TOTAL", "A", "B", "AVE_SALARY")); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDerivedRule(localRule("other", "LOG_SAL", "AVE_SALARY")); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDerivedRule(localRule("v", "LOG_SAL", "AVE_SALARY")); err == nil {
		t.Error("duplicate rule accepted")
	}
	fired := m.DerivedRulesFor("v", "AVE_SALARY")
	if len(fired) != 2 || fired[0].Attr != "LOG_SAL" || fired[1].Attr != "TOTAL" {
		t.Errorf("DerivedRulesFor = %+v", fired)
	}
	if got := m.DerivedRulesFor("v", "B"); len(got) != 1 || got[0].Attr != "TOTAL" {
		t.Errorf("DerivedRulesFor(B) = %+v", got)
	}
	if got := m.DerivedRulesFor("v", "UNRELATED"); len(got) != 0 {
		t.Errorf("unrelated attr fired %d rules", len(got))
	}
	if _, ok := m.DerivedRule("v", "LOG_SAL"); !ok {
		t.Error("DerivedRule lookup failed")
	}
	if _, ok := m.DerivedRule("v", "NOPE"); ok {
		t.Error("missing rule found")
	}
}

func TestViewRegistryDuplicateDetection(t *testing.T) {
	m := NewManagementDB()
	def := ViewDef{
		Name: "wages81", Analyst: "boral", Source: "census80",
		Ops: []string{"select RACE = W", "project SEX,AGE_GROUP,AVE_SALARY"},
	}
	if err := m.RegisterView(def); err != nil {
		t.Fatal(err)
	}
	// Same name is rejected outright.
	if err := m.RegisterView(def); err == nil {
		t.Error("same-name view accepted")
	}
	// Same derivation by the same analyst under another name is the
	// wasteful re-materialization Section 2.3 wants prevented.
	dup := def
	dup.Name = "wages81-again"
	err := m.RegisterView(dup)
	var dupErr *ErrDuplicateView
	if !errors.As(err, &dupErr) || dupErr.Existing != "wages81" {
		t.Errorf("duplicate derivation error = %v", err)
	}
	// A different analyst's private view does not collide...
	other := def
	other.Name = "dewitt-copy"
	other.Analyst = "dewitt"
	if err := m.RegisterView(other); err != nil {
		t.Errorf("other analyst's identical private view rejected: %v", err)
	}
	// ...but once the original is public it does.
	if err := m.Publish("wages81"); err != nil {
		t.Fatal(err)
	}
	third := def
	third.Name = "bates-copy"
	third.Analyst = "bates"
	if err := m.RegisterView(third); err == nil {
		t.Error("copy of a public view accepted")
	}
	// Different ops: fine.
	diff := def
	diff.Name = "wages81-male"
	diff.Ops = append(append([]string{}, def.Ops...), "select SEX = M")
	if err := m.RegisterView(diff); err != nil {
		t.Errorf("distinct derivation rejected: %v", err)
	}
}

func TestPublishAndList(t *testing.T) {
	m := NewManagementDB()
	if err := m.Publish("nope"); err == nil {
		t.Error("publish of missing view accepted")
	}
	_ = m.RegisterView(ViewDef{Name: "a", Analyst: "x", Source: "s", Ops: []string{"1"}})
	_ = m.RegisterView(ViewDef{Name: "b", Analyst: "x", Source: "s", Ops: []string{"2"}})
	if err := m.Publish("b"); err != nil {
		t.Fatal(err)
	}
	if got := m.Views(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Views = %v", got)
	}
	pub := m.PublicViews()
	if len(pub) != 1 || pub[0].Name != "b" {
		t.Errorf("PublicViews = %+v", pub)
	}
	if v, ok := m.View("a"); !ok || v.Analyst != "x" {
		t.Errorf("View(a) = %+v, %v", v, ok)
	}
}

func TestHistory(t *testing.T) {
	m := NewManagementDB()
	_ = m.RegisterView(ViewDef{Name: "v", Analyst: "x", Source: "s", Ops: []string{"1"}})
	h, err := m.HistoryOf("v")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.HistoryOf("nope"); err == nil {
		t.Error("history of missing view returned")
	}
	if _, err := h.PopLast(); err == nil {
		t.Error("pop from empty history accepted")
	}
	h.Append(UpdateRecord{Seq: m.NextSeq(), Analyst: "x", Description: "set A = 1 where B = 2",
		Changes: []CellChange{{Row: 3, Attr: "A", Old: dataset.Int(0), New: dataset.Int(1)}}})
	h.Append(UpdateRecord{Seq: m.NextSeq(), Analyst: "x", Description: "second"})
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	last, ok := h.Last()
	if !ok || last.Description != "second" {
		t.Errorf("Last = %+v, %v", last, ok)
	}
	popped, err := h.PopLast()
	if err != nil || popped.Description != "second" {
		t.Errorf("PopLast = %+v, %v", popped, err)
	}
	if h.Len() != 1 {
		t.Errorf("Len after pop = %d", h.Len())
	}
	recs := h.Records()
	if len(recs) != 1 || recs[0].Changes[0].Attr != "A" {
		t.Errorf("Records = %+v", recs)
	}
	if m.NextSeq() <= 2 {
		t.Error("NextSeq not monotone")
	}
}
