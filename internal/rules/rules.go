// Package rules implements the Management Database of Section 3.2: the
// single per-DBMS repository of control information — rules for
// incrementally recomputing Summary Database values, rules describing how
// derived attributes react to updates of their inputs (local vs global),
// view definitions, and per-view update histories that support undo.
package rules

import (
	"fmt"
	"sort"
	"sync"

	"statdb/internal/dataset"
)

// Strategy is how a cached function value is maintained when the data it
// was computed from changes (Section 4.3 enumerates the choices).
type Strategy uint8

const (
	// StrategyRecompute always recomputes from the data on update — the
	// no-cache-maintenance baseline.
	StrategyRecompute Strategy = iota
	// StrategyIncremental applies a finite-differenced f′ (Section 4.2).
	StrategyIncremental
	// StrategyWindow maintains the value through a sliding order-statistic
	// window (the median technique of Section 4.2).
	StrategyWindow
	// StrategyInvalidate marks the cached value stale on update and
	// regenerates lazily when next requested (the fallback of Section 4.3).
	StrategyInvalidate
)

func (s Strategy) String() string {
	switch s {
	case StrategyIncremental:
		return "incremental"
	case StrategyWindow:
		return "window"
	case StrategyInvalidate:
		return "invalidate"
	default:
		return "recompute"
	}
}

// Scope classifies a derived attribute's reaction to updates of its
// inputs (the Section 3.2 examples: sum-of-three-attributes is local,
// regression residuals are global).
type Scope uint8

const (
	// ScopeLocal: the derived value depends only on values in the same
	// row; an input update recomputes one cell.
	ScopeLocal Scope = iota
	// ScopeGlobal: the derived vector depends on the whole column (the
	// model may change); any input update regenerates the entire vector
	// or marks it out of date.
	ScopeGlobal
)

func (s Scope) String() string {
	if s == ScopeGlobal {
		return "global"
	}
	return "local"
}

// DerivedRule describes how one derived attribute of one view is kept
// consistent.
type DerivedRule struct {
	View   string
	Attr   string
	Inputs []string // attributes the derivation reads
	Scope  Scope
	// Row recomputes the derived cell from its row (ScopeLocal).
	Row func(sch *dataset.Schema, row dataset.Row) dataset.Value
	// Column regenerates the whole derived vector (ScopeGlobal).
	Column func(ds *dataset.Dataset) ([]dataset.Value, error)
}

// Validate checks the rule is internally consistent.
func (r DerivedRule) Validate() error {
	if r.View == "" || r.Attr == "" {
		return fmt.Errorf("rules: derived rule needs view and attribute names")
	}
	if len(r.Inputs) == 0 {
		return fmt.Errorf("rules: derived rule %s.%s has no inputs", r.View, r.Attr)
	}
	switch r.Scope {
	case ScopeLocal:
		if r.Row == nil {
			return fmt.Errorf("rules: local rule %s.%s needs a Row function", r.View, r.Attr)
		}
	case ScopeGlobal:
		if r.Column == nil {
			return fmt.Errorf("rules: global rule %s.%s needs a Column function", r.View, r.Attr)
		}
	}
	return nil
}

// ViewDef records how a concrete view was materialized: the raw file it
// came from and the operation list, so another analyst can see the view's
// provenance (and the system can detect re-creation of an existing view,
// Section 2.3).
type ViewDef struct {
	Name    string
	Analyst string
	Source  string   // raw archive file
	Ops     []string // textual materialization steps, in order
	Public  bool     // published for other analysts (Section 2.3)
}

// Fingerprint canonically identifies the view's derivation for duplicate
// detection: same source and same operation list means the same view
// contents.
func (v ViewDef) Fingerprint() string {
	fp := v.Source
	for _, op := range v.Ops {
		fp += "\x00" + op
	}
	return fp
}

// ManagementDB is the single control repository. It is safe for
// concurrent use by multiple analyst sessions.
type ManagementDB struct {
	mu         sync.RWMutex
	strategies map[string]Strategy    // function name -> maintenance strategy
	derived    map[string]DerivedRule // view\x00attr -> rule
	views      map[string]*ViewDef    // view name -> definition
	histories  map[string]*History    // view name -> update history
	seq        int64                  // virtual timestamp source
}

// NewManagementDB creates an empty Management Database with the default
// strategy table: the aggregates Koenig–Paige can difference run
// incrementally, order statistics run through windows, and everything
// else invalidates.
func NewManagementDB() *ManagementDB {
	m := &ManagementDB{
		strategies: make(map[string]Strategy),
		derived:    make(map[string]DerivedRule),
		views:      make(map[string]*ViewDef),
		histories:  make(map[string]*History),
	}
	for _, fn := range []string{"count", "sum", "mean", "variance", "sd", "min", "max"} {
		m.strategies[fn] = StrategyIncremental
	}
	for _, fn := range []string{"median", "q1", "q3", "quantile"} {
		m.strategies[fn] = StrategyWindow
	}
	for _, fn := range []string{"mode", "unique", "histogram", "frequencies"} {
		m.strategies[fn] = StrategyInvalidate
	}
	return m
}

// SetStrategy binds function name fn to strategy s.
func (m *ManagementDB) SetStrategy(fn string, s Strategy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.strategies[fn] = s
}

// StrategyFor returns the maintenance strategy for function fn,
// defaulting to StrategyInvalidate for unknown functions — an unknown
// function's cached value can always be safely invalidated.
func (m *ManagementDB) StrategyFor(fn string) Strategy {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if s, ok := m.strategies[fn]; ok {
		return s
	}
	return StrategyInvalidate
}

func derivedKey(view, attr string) string { return view + "\x00" + attr }

// AddDerivedRule registers how a derived attribute is maintained.
func (m *ManagementDB) AddDerivedRule(r DerivedRule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := derivedKey(r.View, r.Attr)
	if _, dup := m.derived[k]; dup {
		return fmt.Errorf("rules: derived rule for %s.%s already registered", r.View, r.Attr)
	}
	m.derived[k] = r
	return nil
}

// DerivedRulesFor returns the rules of view whose inputs include attr —
// the rule set to fire when attr is updated (Section 4.1).
func (m *ManagementDB) DerivedRulesFor(view, attr string) []DerivedRule {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []DerivedRule
	for _, r := range m.derived {
		if r.View != view {
			continue
		}
		for _, in := range r.Inputs {
			if in == attr {
				out = append(out, r)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Attr < out[j].Attr })
	return out
}

// DerivedRule returns the rule for one derived attribute.
func (m *ManagementDB) DerivedRule(view, attr string) (DerivedRule, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.derived[derivedKey(view, attr)]
	return r, ok
}

// RegisterView records a view definition and creates its history. If an
// existing view (public, or owned by the same analyst) has the same
// fingerprint, RegisterView fails with ErrDuplicateView naming it — the
// "insure that an analyst does not recreate a view that has already been
// created" mechanism of Section 2.3.
func (m *ManagementDB) RegisterView(def ViewDef) error {
	if def.Name == "" {
		return fmt.Errorf("rules: view needs a name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.views[def.Name]; dup {
		return fmt.Errorf("rules: view %q already registered", def.Name)
	}
	fp := def.Fingerprint()
	for _, v := range m.views {
		if (v.Public || v.Analyst == def.Analyst) && v.Fingerprint() == fp {
			return &ErrDuplicateView{Existing: v.Name, Analyst: v.Analyst}
		}
	}
	cp := def
	m.views[def.Name] = &cp
	m.histories[def.Name] = &History{}
	return nil
}

// ErrDuplicateView reports that an identical view already exists.
type ErrDuplicateView struct {
	Existing string
	Analyst  string
}

func (e *ErrDuplicateView) Error() string {
	return fmt.Sprintf("rules: an identical view %q already exists (analyst %s); reuse it instead of re-materializing", e.Existing, e.Analyst)
}

// View returns a registered view definition.
func (m *ManagementDB) View(name string) (ViewDef, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.views[name]
	if !ok {
		return ViewDef{}, false
	}
	return *v, true
}

// Views lists registered view names in sorted order.
func (m *ManagementDB) Views() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.views))
	for n := range m.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Publish marks a view public so other analysts can find and reuse its
// cleaned data (Section 2.3 / 3.2).
func (m *ManagementDB) Publish(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.views[name]
	if !ok {
		return fmt.Errorf("rules: no view %q", name)
	}
	v.Public = true
	return nil
}

// PublicViews lists the published view definitions.
func (m *ManagementDB) PublicViews() []ViewDef {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []ViewDef
	for _, v := range m.views {
		if v.Public {
			out = append(out, *v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HistoryOf returns the update history of a registered view.
func (m *ManagementDB) HistoryOf(view string) (*History, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.histories[view]
	if !ok {
		return nil, fmt.Errorf("rules: no view %q", view)
	}
	return h, nil
}

// NextSeq returns a fresh virtual timestamp.
func (m *ManagementDB) NextSeq() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	return m.seq
}
