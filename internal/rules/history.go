package rules

import (
	"fmt"
	"sync"

	"statdb/internal/dataset"
)

// CellChange is a physical before-image of one modified cell.
type CellChange struct {
	Row  int
	Attr string
	Old  dataset.Value
	New  dataset.Value
}

// UpdateRecord is one entry of a view's update history. It carries both a
// logical description (what the analyst asked for) and physical
// before-images (what changed), so the history serves the two purposes
// Section 3.2 gives it: rolling a view back, and letting other analysts
// audit what data-cleaning actions their predecessors took.
type UpdateRecord struct {
	Seq         int64
	Analyst     string
	Description string // e.g. `set AVE_SALARY = null where AVE_SALARY > 1000000`
	Changes     []CellChange
}

// History is an append-only update log for one view with undo support.
// It is safe for concurrent use.
type History struct {
	mu      sync.Mutex
	records []UpdateRecord
}

// Append records one update.
func (h *History) Append(r UpdateRecord) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.records = append(h.records, r)
}

// Len returns the number of recorded updates.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.records)
}

// Records returns a copy of the history, oldest first.
func (h *History) Records() []UpdateRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]UpdateRecord, len(h.records))
	copy(out, h.records)
	return out
}

// PopLast removes and returns the most recent update for undoing.
func (h *History) PopLast() (UpdateRecord, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.records) == 0 {
		return UpdateRecord{}, fmt.Errorf("rules: history is empty")
	}
	r := h.records[len(h.records)-1]
	h.records = h.records[:len(h.records)-1]
	return r, nil
}

// Last returns the most recent update without removing it.
func (h *History) Last() (UpdateRecord, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.records) == 0 {
		return UpdateRecord{}, false
	}
	return h.records[len(h.records)-1], true
}
