package summary

import (
	"statdb/internal/exec"
	"statdb/internal/stats"
)

// ParallelThreshold is the column length below which Summary Database
// recomputations stay on the exact serial operators even when a pool is
// attached: fan-out overhead loses on short columns, and keeping small
// data sets serial preserves the pre-engine results bit for bit.
const ParallelThreshold = 2 * exec.DefaultChunk

// SetExec attaches an execution pool so whole-column recomputations
// (cache misses, stale refills, maintainer rebuild passes feeding
// computeScalar) run chunk-parallel. A nil or single-worker pool — or
// chunk <= 0 with short columns — keeps today's serial behavior.
// Results are deterministic for any worker count; order-insensitive
// functions (count, min, max, median, quartiles, mode, unique) are
// bit-identical to serial, while sum, mean, variance and sd may differ
// in the last units of precision.
func (db *DB) SetExec(p *exec.Pool, chunk int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.pool = p
	if chunk <= 0 {
		chunk = exec.DefaultChunk
	}
	db.chunk = chunk
}

// computeScalar evaluates a built-in function, routing long columns
// through the pool and everything else through builtinScalar.
func (db *DB) computeScalar(fn string, xs []float64, valid []bool) (float64, error) {
	p := db.pool
	if p == nil || p.Workers() <= 1 || len(xs) < ParallelThreshold {
		return builtinScalar(fn, xs, valid)
	}
	switch fn {
	case "count", "sum", "mean", "variance", "sd", "min", "max":
		m := exec.ColumnMoments(p, xs, valid, db.chunk)
		if fn == "count" {
			return float64(m.N), nil
		}
		if m.N < 2 {
			// Degenerate columns take the serial path so error text and
			// empty-column semantics match builtinScalar exactly.
			return builtinScalar(fn, xs, valid)
		}
		switch fn {
		case "sum":
			return m.Sum, nil
		case "mean":
			return m.MeanValue()
		case "variance":
			return m.Variance()
		case "sd":
			return m.SD()
		case "min":
			lo, _, err := m.Extremes()
			return lo, err
		case "max":
			_, hi, err := m.Extremes()
			return hi, err
		}
	case "median":
		return stats.QuantileChunks(p, xs, valid, db.chunk, 0.5)
	case "q1":
		return stats.QuantileChunks(p, xs, valid, db.chunk, 0.25)
	case "q3":
		return stats.QuantileChunks(p, xs, valid, db.chunk, 0.75)
	case "unique":
		return float64(stats.UniqueCountChunks(p, xs, valid, db.chunk)), nil
	case "mode":
		m, _, err := stats.ModeChunks(p, xs, valid, db.chunk)
		return m, err
	}
	return builtinScalar(fn, xs, valid)
}
