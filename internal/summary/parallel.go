package summary

import (
	"statdb/internal/exec"
	"statdb/internal/obs"
	"statdb/internal/stats"
)

// ParallelThreshold is the column length below which Summary Database
// recomputations stay on the exact serial operators even when a pool is
// attached: fan-out overhead loses on short columns, and keeping small
// data sets serial preserves the pre-engine results bit for bit.
const ParallelThreshold = 2 * exec.DefaultChunk

// SetExec attaches an execution pool so whole-column recomputations
// (cache misses, stale refills, maintainer rebuild passes feeding
// computeScalar) run chunk-parallel. A nil or single-worker pool — or
// chunk <= 0 with short columns — keeps today's serial behavior.
// Results are deterministic for any worker count; order-insensitive
// functions (count, min, max, median, quartiles, mode, unique) are
// bit-identical to serial, while sum, mean, variance and sd may differ
// in the last units of precision.
func (db *DB) SetExec(p *exec.Pool, chunk int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.pool = p
	if chunk <= 0 {
		chunk = exec.DefaultChunk
	}
	db.chunk = chunk
}

// computeScalar evaluates a built-in function, routing long columns
// through the pool and everything else through builtinScalar. The fold
// is profiled as a span charged with the engine cost model's ticks for
// the chosen route (never wall time), so EXPLAIN output is deterministic
// and the serial-vs-parallel decision is visible in both the span attrs
// and the summary.recompute.{serial,parallel} counters.
func (db *DB) computeScalar(fn string, xs []float64, valid []bool) (float64, error) {
	cost := exec.DefaultCost()
	p := db.pool
	if p == nil || p.Workers() <= 1 || len(xs) < ParallelThreshold {
		ticks := cost.SerialTicks(len(xs))
		sp := db.tracer.Begin("fold", obs.A("fn", fn), obs.A("engine", "serial"))
		sp.Charge(ticks)
		defer sp.End()
		db.met.recomputeSerial.Inc()
		db.met.passTicks.Observe(ticks)
		return builtinScalar(fn, xs, valid)
	}
	chunks := len(exec.Chunks(len(xs), db.chunk))
	workers := p.Workers()
	if workers > chunks {
		workers = chunks
	}
	ticks := cost.ParallelTicks(len(xs), db.chunk, p.Workers())
	sp := db.tracer.Begin("fold", obs.A("fn", fn), obs.A("engine", "parallel"),
		obs.AI("chunks", int64(chunks)), obs.AI("workers", int64(workers)))
	sp.Charge(ticks)
	defer sp.End()
	db.met.recomputeParallel.Inc()
	db.met.passTicks.Observe(ticks)
	switch fn {
	case "count", "sum", "mean", "variance", "sd", "min", "max":
		m := exec.ColumnMoments(p, xs, valid, db.chunk)
		if fn == "count" {
			return float64(m.N), nil
		}
		if m.N < 2 {
			// Degenerate columns take the serial path so error text and
			// empty-column semantics match builtinScalar exactly.
			return builtinScalar(fn, xs, valid)
		}
		switch fn {
		case "sum":
			return m.Sum, nil
		case "mean":
			return m.MeanValue()
		case "variance":
			return m.Variance()
		case "sd":
			return m.SD()
		case "min":
			lo, _, err := m.Extremes()
			return lo, err
		case "max":
			_, hi, err := m.Extremes()
			return hi, err
		}
	case "median":
		return stats.QuantileChunks(p, xs, valid, db.chunk, 0.5)
	case "q1":
		return stats.QuantileChunks(p, xs, valid, db.chunk, 0.25)
	case "q3":
		return stats.QuantileChunks(p, xs, valid, db.chunk, 0.75)
	case "unique":
		return float64(stats.UniqueCountChunks(p, xs, valid, db.chunk)), nil
	case "mode":
		m, _, err := stats.ModeChunks(p, xs, valid, db.chunk)
		return m, err
	}
	return builtinScalar(fn, xs, valid)
}
