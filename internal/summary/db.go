package summary

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"statdb/internal/exec"
	"statdb/internal/incr"
	"statdb/internal/index"
	"statdb/internal/medwin"
	"statdb/internal/obs"
	"statdb/internal/rules"
	"statdb/internal/stats"
)

// Source re-reads one column of the view for (re)computation — the only
// path by which the Summary Database touches the data, so counting calls
// to it counts full column passes.
type Source func() (xs []float64, valid []bool)

// Policy selects how the whole cache reacts to updates (experiment E7).
type Policy uint8

const (
	// PolicyStrategies applies each function's Management Database
	// strategy: incremental, window, or invalidate (the paper's design).
	PolicyStrategies Policy = iota
	// PolicyInvalidateAll marks every affected entry stale on any update
	// and regenerates lazily — the Section 4.3 fallback.
	PolicyInvalidateAll
	// PolicyRecomputeAll recomputes every affected entry immediately on
	// every update — the always-precise worst case.
	PolicyRecomputeAll
)

func (p Policy) String() string {
	switch p {
	case PolicyInvalidateAll:
		return "invalidate-all"
	case PolicyRecomputeAll:
		return "recompute-all"
	default:
		return "per-function"
	}
}

// Counters instrument the cache for the experiments.
type Counters struct {
	Hits        int64 // lookups answered from a fresh entry
	Misses      int64 // lookups that computed from the data
	StaleRefill int64 // lookups that found a stale entry and recomputed
	Incremental int64 // deltas folded into maintainers
	Slides      int64 // deltas absorbed by quantile windows
	Rebuilds    int64 // maintainer/window rebuilds (full column passes)
	Recomputes  int64 // strategy- or policy-forced recomputations
	Passes      int64 // total full column passes through Sources
}

// entry is one cached (function, attributes) result.
type entry struct {
	fn     string
	attrs  []string
	result Result
	fresh  bool
	// Maintenance state, populated according to the function's strategy.
	maint incr.Maintainer // StrategyIncremental
	win   *medwin.Window  // StrategyWindow
	// source re-reads the column for rebuilds (built-in functions).
	source Source
	// runs, when set, re-reads the column as a run column; refreshes
	// prefer it over source (runs.go). Run-served entries carry no
	// maintainer or window — updates invalidate, the next access refills.
	runs RunSource
	// recompute regenerates custom results (Register entries).
	recompute func() (Result, error)
}

func (e *entry) key() []byte {
	parts := append(append([]string{}, e.attrs...), e.fn)
	return index.Key(parts...)
}

func entryKey(fn string, attrs []string) []byte {
	parts := append(append([]string{}, attrs...), fn)
	return index.Key(parts...)
}

// DB is one view's Summary Database. Safe for concurrent use: a view may
// be shared by "a group of users" (Section 3.2), and a published view's
// cache serves several analysts at once. Sources are invoked while the
// lock is held, so a Source must never call back into the same DB.
type DB struct {
	mu       sync.Mutex
	mdb      *rules.ManagementDB
	policy   Policy       // guarded by mu
	idx      *index.BTree // guarded by mu; (attr..., fn) -> slot
	entries  []*entry     // guarded by mu
	counters Counters     // guarded by mu
	// System-wide observability: met mirrors counters into a shared
	// registry (summary.* families) and tracer carries the per-query
	// span tree. Both no-op until SetMetrics/SetTracer wire them.
	met    dbMetrics
	tracer *obs.Tracer
	// Execution engine for whole-column recomputations (SetExec); nil
	// means serial.
	pool  *exec.Pool
	chunk int
	// WindowCapacity sizes quantile windows ("some number, say 100").
	WindowCapacity int
}

// NewDB creates an empty Summary Database driven by mdb's strategies.
func NewDB(mdb *rules.ManagementDB) *DB {
	return &DB{mdb: mdb, idx: index.New(), WindowCapacity: 100}
}

// SetPolicy switches the cache-wide update policy.
func (db *DB) SetPolicy(p Policy) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.policy = p
}

// dbMetrics caches registry handles mirroring Counters plus the engine
// routing and pass-cost instruments. Nil handles (no SetMetrics) no-op.
type dbMetrics struct {
	hits, misses, staleRefill          *obs.Counter
	incremental, slides, rebuilds      *obs.Counter
	recomputes, passes                 *obs.Counter
	recomputeSerial, recomputeParallel *obs.Counter
	passTicks                          *obs.Histogram
	medSlides, medRebuilds             *obs.Counter
	// Run-aware strategy accounting (exec.* family; see runs.go).
	runsFolded, rowsDecoded, runStrategyHits *obs.Counter
}

// SetMetrics mirrors the cache's instrumentation into reg under the
// summary.* (and medwin.*) canonical names. The local Counters struct
// keeps working unchanged; the registry is the roll-up view.
func (db *DB) SetMetrics(reg *obs.Registry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.met = dbMetrics{
		hits:              reg.Counter(obs.MSummaryHits),
		misses:            reg.Counter(obs.MSummaryMisses),
		staleRefill:       reg.Counter(obs.MSummaryStaleRefill),
		incremental:       reg.Counter(obs.MSummaryIncremental),
		slides:            reg.Counter(obs.MSummarySlides),
		rebuilds:          reg.Counter(obs.MSummaryRebuilds),
		recomputes:        reg.Counter(obs.MSummaryRecomputes),
		passes:            reg.Counter(obs.MSummaryPasses),
		recomputeSerial:   reg.Counter(obs.MSummaryRecomputeSerial),
		recomputeParallel: reg.Counter(obs.MSummaryRecomputeParallel),
		passTicks:         reg.Histogram(obs.MSummaryPassTicks, obs.PassTicksBounds()),
		medSlides:         reg.Counter(obs.MMedwinSlides),
		medRebuilds:       reg.Counter(obs.MMedwinRebuilds),
		runsFolded:        reg.Counter(obs.MExecRunsFolded),
		rowsDecoded:       reg.Counter(obs.MExecRowsDecoded),
		runStrategyHits:   reg.Counter(obs.MExecRunStrategyHits),
	}
}

// SetTracer attaches the tracer receiving scan/fold spans; nil disables.
func (db *DB) SetTracer(tr *obs.Tracer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tracer = tr
}

// Counters returns a copy of the instrumentation counters.
func (db *DB) Counters() Counters {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.counters
}

// ResetCounters zeroes the instrumentation.
func (db *DB) ResetCounters() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.counters = Counters{}
}

// Len returns the number of cached entries.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.entries)
}

// builtinScalar computes one of the built-in scalar functions over a
// column. The quantile shorthands q1/median/q3 are fixed points of the
// general quantile machinery.
func builtinScalar(fn string, xs []float64, valid []bool) (float64, error) {
	switch fn {
	case "count":
		return float64(stats.Count(xs, valid)), nil
	case "sum":
		return stats.Sum(xs, valid), nil
	case "mean":
		return stats.Mean(xs, valid)
	case "variance":
		return stats.Variance(xs, valid)
	case "sd":
		return stats.StdDev(xs, valid)
	case "min":
		return stats.Min(xs, valid)
	case "max":
		return stats.Max(xs, valid)
	case "median":
		return stats.Median(xs, valid)
	case "q1":
		return stats.Quantile(xs, valid, 0.25)
	case "q3":
		return stats.Quantile(xs, valid, 0.75)
	case "unique":
		return float64(stats.UniqueCount(xs, valid)), nil
	case "mode":
		m, _, err := stats.Mode(xs, valid)
		return m, err
	}
	return 0, fmt.Errorf("summary: unknown built-in function %q", fn)
}

func quantileOf(fn string) (float64, bool) {
	switch fn {
	case "median":
		return 0.5, true
	case "q1":
		return 0.25, true
	case "q3":
		return 0.75, true
	}
	return 0, false
}

// IsBuiltin reports whether fn is one of the built-in scalar functions.
func IsBuiltin(fn string) bool {
	_, err := builtinScalar(fn, []float64{1, 2}, nil)
	return err == nil
}

// Scalar returns fn(attr), serving from the cache when fresh and
// computing (and installing maintenance state) on a miss. This is the
// search-then-insert protocol of Section 3.2: "if the desired pair is
// found, the corresponding result will be returned; otherwise, after the
// function has been applied ... the new information will be inserted".
func (db *DB) Scalar(fn, attr string, source Source) (float64, error) {
	return db.ScalarRuns(fn, attr, source, nil)
}

// ScalarRuns is Scalar with an optional run-compressed source. When runs
// is non-nil the caller has decided the column is run-eligible (RLE,
// runs/rows under the planner threshold), and misses and refills fold
// the run form in O(runs) through the run kernels; a run read that
// fails falls back to the row source. Run-served entries install no
// incremental maintainer or window: updates invalidate them, and the
// next access refills through the run path again.
func (db *DB) ScalarRuns(fn, attr string, source Source, runs RunSource) (float64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	sp := db.tracer.Begin("summary.scalar", obs.A("fn", fn), obs.A("attr", attr))
	defer sp.End()
	key := entryKey(fn, []string{attr})
	if slot, ok := db.idx.Get(key); ok {
		e := db.entries[slot]
		if e.fresh {
			db.counters.Hits++
			db.met.hits.Inc()
			sp.SetAttr("outcome", "hit")
			return e.result.Scalar, nil
		}
		// Stale entry: regenerate in place. Entries restored from disk
		// carry no maintenance state and no source (persist.go); adopt the
		// caller's source so recovered entries recompute like misses.
		if e.source == nil && e.recompute == nil {
			e.source = source
		}
		if e.runs == nil {
			e.runs = runs
		}
		sp.SetAttr("outcome", "stale-refill")
		v, err := db.refreshScalar(e)
		if err != nil {
			return 0, err
		}
		db.counters.StaleRefill++
		db.met.staleRefill.Inc()
		return v, nil
	}
	db.counters.Misses++
	db.met.misses.Inc()
	sp.SetAttr("outcome", "miss")
	e := &entry{fn: fn, attrs: []string{attr}, source: source, runs: runs}
	if runs != nil {
		if rc, ok := db.readRunSource(runs); ok {
			if err := db.tracer.BudgetErr(); err != nil {
				return 0, err
			}
			v, err := db.computeScalarRuns(fn, rc)
			if err != nil {
				return 0, err
			}
			if err := db.tracer.BudgetErr(); err != nil {
				return 0, err
			}
			e.result = ScalarOf(v)
			e.fresh = true
			db.insert(e)
			return v, nil
		}
	}
	xs, valid := db.readSource(source)
	// Sources cannot return errors, so a budget breached during the scan
	// surfaces here — before the fold spends more, and before a partial
	// result is installed in the cache.
	if err := db.tracer.BudgetErr(); err != nil {
		return 0, err
	}
	v, err := db.computeScalar(fn, xs, valid)
	if err != nil {
		return 0, err
	}
	if err := db.tracer.BudgetErr(); err != nil {
		return 0, err
	}
	e.result = ScalarOf(v)
	e.fresh = true
	db.installMaintenance(e, xs, valid)
	db.insert(e)
	return v, nil
}

// readSource runs one full column pass through source under a "scan"
// span, so whatever the reader charges through the tracer (device ticks
// for store-backed views, cell costs for memory columns) lands on the
// scan node of the query's profile. Counts the pass. The caller holds
// db.mu.
func (db *DB) readSource(source Source) ([]float64, []bool) {
	sp := db.tracer.Begin("scan")
	xs, valid := source()
	sp.SetAttr("rows", fmt.Sprintf("%d", len(xs)))
	sp.SetAttr("strategy", "rows")
	sp.End()
	db.counters.Passes++
	db.met.passes.Inc()
	db.met.rowsDecoded.Add(int64(len(xs)))
	return xs, valid
}

// installMaintenance attaches the maintainer or window dictated by the
// function's strategy, reusing the already-read column.
func (db *DB) installMaintenance(e *entry, xs []float64, valid []bool) {
	if db.policy != PolicyStrategies {
		return // policy benches manage freshness, not per-function state
	}
	switch db.mdb.StrategyFor(e.fn) {
	case rules.StrategyIncremental:
		switch e.fn {
		case "count":
			e.maint = incr.NewCount(xs, valid)
		case "sum":
			e.maint = incr.NewSum(xs, valid)
		case "mean":
			e.maint = incr.NewMean(xs, valid)
		case "variance":
			e.maint = incr.NewVariance(xs, valid)
		case "sd":
			e.maint = incr.NewStdDev(xs, valid)
		case "min":
			e.maint = incr.NewMin(xs, valid)
		case "max":
			e.maint = incr.NewMax(xs, valid)
		}
	case rules.StrategyWindow:
		if p, ok := quantileOf(e.fn); ok {
			if w, err := medwin.NewQuantile(xs, valid, p, db.WindowCapacity); err == nil {
				w.SetCounters(db.met.medSlides, db.met.medRebuilds)
				e.win = w
			}
		}
	}
}

// refreshScalar regenerates a stale scalar entry from its source.
func (db *DB) refreshScalar(e *entry) (float64, error) {
	if e.recompute != nil {
		r, err := e.recompute()
		if err != nil {
			return 0, err
		}
		e.result = r
		e.fresh = true
		db.counters.Recomputes++
		db.met.recomputes.Inc()
		return r.Scalar, nil
	}
	if e.runs != nil {
		if rc, ok := db.readRunSource(e.runs); ok {
			if err := db.tracer.BudgetErr(); err != nil {
				return 0, err
			}
			v, err := db.computeScalarRuns(e.fn, rc)
			if err != nil {
				return 0, err
			}
			e.result = ScalarOf(v)
			e.fresh = true
			db.counters.Recomputes++
			db.met.recomputes.Inc()
			return v, nil
		}
	}
	if e.source == nil {
		// A loaded entry whose source has not been re-adopted yet (custom
		// result restored from disk, or a lookup path that cannot supply
		// one). Degrade explicitly instead of dereferencing nil.
		return 0, fmt.Errorf("summary: stale entry %s(%s) has no source to recompute from",
			e.fn, strings.Join(e.attrs, ","))
	}
	xs, valid := db.readSource(e.source)
	if err := db.tracer.BudgetErr(); err != nil {
		return 0, err
	}
	v, err := db.computeScalar(e.fn, xs, valid)
	if err != nil {
		return 0, err
	}
	e.result = ScalarOf(v)
	e.fresh = true
	db.counters.Recomputes++
	db.met.recomputes.Inc()
	db.installMaintenance(e, xs, valid)
	return v, nil
}

func (db *DB) insert(e *entry) {
	slot := int64(len(db.entries))
	db.entries = append(db.entries, e)
	db.idx.Put(e.key(), slot)
}

// Register caches a custom function result computed by compute. Custom
// entries are maintained by the invalidate strategy (or the cache-wide
// policy) and regenerate through compute.
func (db *DB) Register(fn string, attrs []string, compute func() (Result, error)) (Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := entryKey(fn, attrs)
	if slot, ok := db.idx.Get(key); ok {
		e := db.entries[slot]
		if e.fresh {
			db.counters.Hits++
			db.met.hits.Inc()
			return e.result, nil
		}
		if e.recompute == nil {
			// The key belongs to a built-in scalar entry; refresh it
			// through the scalar path.
			v, err := db.refreshScalar(e)
			if err != nil {
				return Result{}, err
			}
			db.counters.StaleRefill++
			db.met.staleRefill.Inc()
			return ScalarOf(v), nil
		}
		r, err := e.recompute()
		if err != nil {
			return Result{}, err
		}
		e.result = r
		e.fresh = true
		db.counters.StaleRefill++
		db.met.staleRefill.Inc()
		db.counters.Recomputes++
		db.met.recomputes.Inc()
		return r, nil
	}
	db.counters.Misses++
	db.met.misses.Inc()
	r, err := compute()
	if err != nil {
		return Result{}, err
	}
	db.entries = append(db.entries, &entry{
		fn: fn, attrs: attrs, result: r, fresh: true, recompute: compute,
	})
	db.idx.Put(key, int64(len(db.entries)-1))
	return r, nil
}

// Lookup returns the cached result for (fn, attrs) without computing.
// Stale entries report !ok.
func (db *DB) Lookup(fn string, attrs ...string) (Result, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	slot, ok := db.idx.Get(entryKey(fn, attrs))
	if !ok {
		return Result{}, false
	}
	e := db.entries[slot]
	if !e.fresh {
		return Result{}, false
	}
	db.counters.Hits++
	db.met.hits.Inc()
	return e.result, true
}

// StoreCustom inserts or overwrites a custom result computed by the
// caller, marking it fresh. Unlike Register it stores no recompute
// closure: after invalidation the entry stays stale until the caller
// recomputes and stores again. This is the cache protocol for callers
// that must not have their closures invoked under the cache lock (the
// view layer, whose closures take the view lock).
func (db *DB) StoreCustom(fn string, attrs []string, r Result) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.counters.Misses++
	db.met.misses.Inc()
	if slot, ok := db.idx.Get(entryKey(fn, attrs)); ok {
		e := db.entries[slot]
		e.result = r
		e.fresh = true
		return
	}
	db.insert(&entry{fn: fn, attrs: attrs, result: r, fresh: true})
}

// Invalidate marks every entry touching attr stale — the bulk
// invalidation of Section 4.3. It uses the attribute-clustered index
// scan, which experiment "ablation: clustering" measures.
func (db *DB) Invalidate(attr string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	db.idx.ScanPrefix(index.Key(attr), func(_ []byte, slot int64) bool {
		e := db.entries[slot]
		if e.fresh {
			e.fresh = false
			n++
		}
		return true
	})
	return n
}

// OnUpdate propagates one column update (a batch of deltas against attr)
// into the cache. Each affected entry reacts per the active policy and
// its function's strategy, exactly the flow of Section 4.1: retrieve all
// values clustered on the attribute, then apply each function's rules.
func (db *DB) OnUpdate(attr string, deltas []incr.Delta) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.idx.ScanPrefix(index.Key(attr), func(_ []byte, slot int64) bool {
		e := db.entries[slot]
		db.applyUpdate(e, deltas)
		return true
	})
}

func (db *DB) applyUpdate(e *entry, deltas []incr.Delta) {
	switch db.policy {
	case PolicyInvalidateAll:
		e.fresh = false
		return
	case PolicyRecomputeAll:
		if e.recompute != nil {
			if r, err := e.recompute(); err == nil {
				e.result, e.fresh = r, true
				db.counters.Recomputes++
				db.met.recomputes.Inc()
			} else {
				e.fresh = false
			}
			return
		}
		e.fresh = false
		if e.source != nil {
			if _, err := db.refreshScalar(e); err != nil {
				e.fresh = false
			}
		}
		return
	}

	// PolicyStrategies.
	switch {
	case e.maint != nil:
		ok := true
		for _, d := range deltas {
			if !e.maint.Apply(d) {
				ok = false
				break
			}
		}
		if !ok {
			// Defeated (e.g. min's last copy deleted): rebuild from data.
			xs, valid := db.readSource(e.source)
			db.counters.Rebuilds++
			db.met.rebuilds.Inc()
			e.maint.Rebuild(xs, valid)
		} else {
			db.counters.Incremental += int64(len(deltas))
			db.met.incremental.Add(int64(len(deltas)))
		}
		if v, err := e.maint.Value(); err == nil {
			e.result, e.fresh = ScalarOf(v), true
		} else {
			e.fresh = false
		}
	case e.win != nil:
		for _, d := range deltas {
			if d.Delete {
				if err := e.win.Delete(d.Old); err != nil {
					e.fresh = false
					return
				}
			}
			if d.Insert {
				e.win.Insert(d.New)
			}
			db.counters.Slides++
			db.met.slides.Inc()
		}
		if e.win.NeedsRebuild() {
			// The pointer ran off: regenerate with one pass (Section 4.2).
			xs, valid := db.readSource(e.source)
			db.counters.Rebuilds++
			db.met.rebuilds.Inc()
			e.win.Rebuild(xs, valid)
		}
		if v, err := e.win.Value(); err == nil {
			e.result, e.fresh = ScalarOf(v), true
		} else {
			e.fresh = false
		}
	default:
		// StrategyInvalidate (and custom entries).
		e.fresh = false
	}
}

// Row is one line of the Figure 4 table.
type Row struct {
	Function  string
	Attribute string
	Result    string
	Fresh     bool
}

// Dump renders the cache as the Figure 4 three-column table, clustered by
// attribute (the physical order of Section 4.1) and alphabetical by
// function within an attribute.
func (db *DB) Dump() []Row {
	db.mu.Lock()
	defer db.mu.Unlock()
	var rows []Row
	db.idx.Scan(nil, nil, func(_ []byte, slot int64) bool {
		e := db.entries[slot]
		rows = append(rows, Row{
			Function:  e.fn,
			Attribute: strings.Join(e.attrs, ","),
			Result:    e.result.String(),
			Fresh:     e.fresh,
		})
		return true
	})
	return rows
}

// AttributesCached lists the attributes with at least one cached entry.
func (db *DB) AttributesCached() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	set := map[string]bool{}
	for _, e := range db.entries {
		set[strings.Join(e.attrs, ",")] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
