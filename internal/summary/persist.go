package summary

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"statdb/internal/dataset"
	"statdb/internal/index"
	"statdb/internal/stats"
	"statdb/internal/storage"
)

// Persistence: the Summary Database "may itself become relatively large"
// (Section 3.2), so it is storable: entries go to a heap file of
// (function, attributes, freshness, result) records with a DiskTree
// secondary index on (attributes..., function) — the paper's clustering
// and index choice, durable. Maintenance state (maintainers, windows,
// recompute closures) is rebuilt lazily after Load, exactly like the
// invalidate-fallback of Section 4.3.

// resultSchema is the stored row layout.
func resultSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "ATTRS", Kind: dataset.KindString, Category: true},
		dataset.Attribute{Name: "FUNCTION", Kind: dataset.KindString, Category: true},
		dataset.Attribute{Name: "FRESH", Kind: dataset.KindInt},
		dataset.Attribute{Name: "RESULT", Kind: dataset.KindString},
	)
}

// encodeResult serializes a Result: kind byte then payload.
func encodeResult(r Result) []byte {
	var out []byte
	out = append(out, byte(r.Kind))
	switch r.Kind {
	case ScalarResult:
		out = appendF64(out, r.Scalar)
	case VectorResult:
		out = binary.AppendUvarint(out, uint64(len(r.Vector)))
		for _, v := range r.Vector {
			out = appendF64(out, v)
		}
	case HistogramResult:
		if r.Hist == nil {
			out = binary.AppendUvarint(out, 0)
			return out
		}
		out = binary.AppendUvarint(out, uint64(len(r.Hist.Edges)))
		for _, e := range r.Hist.Edges {
			out = appendF64(out, e)
		}
		for _, c := range r.Hist.Counts {
			out = binary.AppendUvarint(out, uint64(c))
		}
	case TextResult:
		out = append(out, r.Text...)
	}
	return out
}

func appendF64(dst []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(dst, b[:]...)
}

func takeF64(buf []byte) (float64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("summary: truncated float")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])), buf[8:], nil
}

// decodeResult parses encodeResult's output.
func decodeResult(buf []byte) (Result, error) {
	if len(buf) == 0 {
		return Result{}, fmt.Errorf("summary: empty result encoding")
	}
	kind := ResultKind(buf[0])
	buf = buf[1:]
	switch kind {
	case ScalarResult:
		v, _, err := takeF64(buf)
		if err != nil {
			return Result{}, err
		}
		return ScalarOf(v), nil
	case VectorResult:
		n, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return Result{}, fmt.Errorf("summary: bad vector length")
		}
		buf = buf[sz:]
		// Bound the allocation by the bytes actually present: a corrupt
		// length must fail cleanly, not allocate gigabytes.
		if n > uint64(len(buf))/8 {
			return Result{}, fmt.Errorf("summary: vector length %d exceeds %d payload bytes", n, len(buf))
		}
		vec := make([]float64, n)
		var err error
		for i := range vec {
			vec[i], buf, err = takeF64(buf)
			if err != nil {
				return Result{}, err
			}
		}
		return VectorOf(vec), nil
	case HistogramResult:
		n, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return Result{}, fmt.Errorf("summary: bad histogram length")
		}
		buf = buf[sz:]
		if n == 0 {
			return HistogramOf(nil), nil
		}
		// Same bound as vectors: n edges need 8n bytes before the counts.
		if n > uint64(len(buf))/8 {
			return Result{}, fmt.Errorf("summary: histogram with %d edges exceeds %d payload bytes", n, len(buf))
		}
		h := &stats.Histogram{Edges: make([]float64, n), Counts: make([]int, n-1)}
		var err error
		for i := range h.Edges {
			h.Edges[i], buf, err = takeF64(buf)
			if err != nil {
				return Result{}, err
			}
		}
		for i := range h.Counts {
			c, sz := binary.Uvarint(buf)
			if sz <= 0 {
				return Result{}, fmt.Errorf("summary: bad histogram count")
			}
			h.Counts[i] = int(c)
			buf = buf[sz:]
		}
		return HistogramOf(h), nil
	case TextResult:
		return TextOf(string(buf)), nil
	}
	return Result{}, fmt.Errorf("summary: unknown result kind %d", kind)
}

// Save writes every entry to the heap file and indexes it in tree, which
// must be empty. A nil tree skips indexing (the crash-consistent Store
// checkpoints without one: Restore scans). The caller persists the heap
// file's device and the tree's root page elsewhere (a catalog or the
// Store's commit record).
func (db *DB) Save(h *storage.HeapFile, tree *index.DiskTree) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !h.Schema().Equal(resultSchema()) {
		return fmt.Errorf("summary: heap file has schema %s, want the summary schema", h.Schema())
	}
	for _, e := range db.entries {
		fresh := int64(0)
		if e.fresh {
			fresh = 1
		}
		rid, err := h.Insert(dataset.Row{
			dataset.String(strings.Join(e.attrs, "\x1f")),
			dataset.String(e.fn),
			dataset.Int(fresh),
			dataset.String(string(encodeResult(e.result))),
		})
		if err != nil {
			return err
		}
		if tree != nil {
			key := entryKey(e.fn, e.attrs)
			if err := tree.Put(key, int64(rid.Page)<<16|int64(rid.Slot)); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadReport accounts for what a tolerant load salvaged and what it had
// to give up. Because the Summary Database is a cache over the concrete
// view (Section 3.2), giving up is always safe: a dropped entry is a
// future miss, a stale entry a future recompute.
type LoadReport struct {
	Loaded       int // entries restored fresh as stored
	StaleMarked  int // entries whose key decoded but whose result did not: kept, marked for recompute
	Dropped      int // records that did not decode at all
	CorruptPages int // whole pages skipped on checksum failure
}

func (r LoadReport) String() string {
	return fmt.Sprintf("loaded=%d stale=%d dropped=%d corrupt_pages=%d",
		r.Loaded, r.StaleMarked, r.Dropped, r.CorruptPages)
}

// Load reads every record of h back into a fresh cache attached to the
// same Management Database. Entries come back without maintenance state:
// the first post-load update to an attribute invalidates its entries, and
// the next read rebuilds — the safe lazy path.
//
// Load degrades rather than fails on corruption: a page that fails its
// checksum is skipped whole, a record that does not decode is dropped,
// and a record whose (function, attributes) key decodes but whose result
// payload does not is kept as a stale entry so the next lookup recomputes
// it from the view. The report says what happened; the error is reserved
// for non-corruption failures (wrong schema, device errors).
func Load(db *DB, h *storage.HeapFile) (LoadReport, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	var rep LoadReport
	if !h.Schema().Equal(resultSchema()) {
		return rep, fmt.Errorf("summary: heap file has schema %s, want the summary schema", h.Schema())
	}
	err := h.ScanTolerant(func(_ storage.RID, row dataset.Row) bool {
		// DecodeRow validates the wire format, not the schema kinds: a
		// damaged record can decode into the wrong kinds, so check before
		// every accessor (the dataset.Value accessors panic by contract).
		if len(row) != 4 ||
			row[0].Kind() != dataset.KindString ||
			row[1].Kind() != dataset.KindString ||
			row[2].Kind() != dataset.KindInt ||
			row[3].Kind() != dataset.KindString {
			rep.Dropped++
			return true
		}
		attrs := strings.Split(row[0].AsString(), "\x1f")
		e := &entry{
			fn:    row[1].AsString(),
			attrs: attrs,
		}
		if _, dup := db.idx.Get(e.key()); dup {
			rep.Dropped++ // a damaged record that aliases a live key
			return true
		}
		res, err := decodeResult([]byte(row[3].AsString()))
		if err != nil {
			// The key survived but the result did not: keep the entry
			// stale so the next lookup recomputes — degrade, not fail.
			e.fresh = false
			rep.StaleMarked++
			db.insert(e)
			return true
		}
		e.result = res
		e.fresh = row[2].AsInt() == 1
		db.insert(e)
		rep.Loaded++
		return true
	}, func(c storage.Corruption) {
		if c.Slot < 0 {
			rep.CorruptPages++
		} else {
			rep.Dropped++
		}
	})
	return rep, err
}

// NewSummaryHeapFile creates a heap file with the summary row schema.
func NewSummaryHeapFile(pool *storage.BufferPool) *storage.HeapFile {
	return storage.NewHeapFile(pool, resultSchema())
}
