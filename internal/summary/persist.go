package summary

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"statdb/internal/dataset"
	"statdb/internal/index"
	"statdb/internal/stats"
	"statdb/internal/storage"
)

// Persistence: the Summary Database "may itself become relatively large"
// (Section 3.2), so it is storable: entries go to a heap file of
// (function, attributes, freshness, result) records with a DiskTree
// secondary index on (attributes..., function) — the paper's clustering
// and index choice, durable. Maintenance state (maintainers, windows,
// recompute closures) is rebuilt lazily after Load, exactly like the
// invalidate-fallback of Section 4.3.

// resultSchema is the stored row layout.
func resultSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "ATTRS", Kind: dataset.KindString, Category: true},
		dataset.Attribute{Name: "FUNCTION", Kind: dataset.KindString, Category: true},
		dataset.Attribute{Name: "FRESH", Kind: dataset.KindInt},
		dataset.Attribute{Name: "RESULT", Kind: dataset.KindString},
	)
}

// encodeResult serializes a Result: kind byte then payload.
func encodeResult(r Result) []byte {
	var out []byte
	out = append(out, byte(r.Kind))
	switch r.Kind {
	case ScalarResult:
		out = appendF64(out, r.Scalar)
	case VectorResult:
		out = binary.AppendUvarint(out, uint64(len(r.Vector)))
		for _, v := range r.Vector {
			out = appendF64(out, v)
		}
	case HistogramResult:
		if r.Hist == nil {
			out = binary.AppendUvarint(out, 0)
			return out
		}
		out = binary.AppendUvarint(out, uint64(len(r.Hist.Edges)))
		for _, e := range r.Hist.Edges {
			out = appendF64(out, e)
		}
		for _, c := range r.Hist.Counts {
			out = binary.AppendUvarint(out, uint64(c))
		}
	case TextResult:
		out = append(out, r.Text...)
	}
	return out
}

func appendF64(dst []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(dst, b[:]...)
}

func takeF64(buf []byte) (float64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("summary: truncated float")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])), buf[8:], nil
}

// decodeResult parses encodeResult's output.
func decodeResult(buf []byte) (Result, error) {
	if len(buf) == 0 {
		return Result{}, fmt.Errorf("summary: empty result encoding")
	}
	kind := ResultKind(buf[0])
	buf = buf[1:]
	switch kind {
	case ScalarResult:
		v, _, err := takeF64(buf)
		if err != nil {
			return Result{}, err
		}
		return ScalarOf(v), nil
	case VectorResult:
		n, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return Result{}, fmt.Errorf("summary: bad vector length")
		}
		buf = buf[sz:]
		vec := make([]float64, n)
		var err error
		for i := range vec {
			vec[i], buf, err = takeF64(buf)
			if err != nil {
				return Result{}, err
			}
		}
		return VectorOf(vec), nil
	case HistogramResult:
		n, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return Result{}, fmt.Errorf("summary: bad histogram length")
		}
		buf = buf[sz:]
		if n == 0 {
			return HistogramOf(nil), nil
		}
		h := &stats.Histogram{Edges: make([]float64, n), Counts: make([]int, n-1)}
		var err error
		for i := range h.Edges {
			h.Edges[i], buf, err = takeF64(buf)
			if err != nil {
				return Result{}, err
			}
		}
		for i := range h.Counts {
			c, sz := binary.Uvarint(buf)
			if sz <= 0 {
				return Result{}, fmt.Errorf("summary: bad histogram count")
			}
			h.Counts[i] = int(c)
			buf = buf[sz:]
		}
		return HistogramOf(h), nil
	case TextResult:
		return TextOf(string(buf)), nil
	}
	return Result{}, fmt.Errorf("summary: unknown result kind %d", kind)
}

// Save writes every entry to the heap file and indexes it in tree, which
// must be empty. The caller persists the heap file's device and the
// tree's root page elsewhere (a catalog).
func (db *DB) Save(h *storage.HeapFile, tree *index.DiskTree) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !h.Schema().Equal(resultSchema()) {
		return fmt.Errorf("summary: heap file has schema %s, want the summary schema", h.Schema())
	}
	for _, e := range db.entries {
		fresh := int64(0)
		if e.fresh {
			fresh = 1
		}
		rid, err := h.Insert(dataset.Row{
			dataset.String(strings.Join(e.attrs, "\x1f")),
			dataset.String(e.fn),
			dataset.Int(fresh),
			dataset.String(string(encodeResult(e.result))),
		})
		if err != nil {
			return err
		}
		key := entryKey(e.fn, e.attrs)
		if err := tree.Put(key, int64(rid.Page)<<16|int64(rid.Slot)); err != nil {
			return err
		}
	}
	return nil
}

// Load reads every record of h back into a fresh cache attached to the
// same Management Database. Entries come back without maintenance state:
// the first post-load update to an attribute invalidates its entries, and
// the next read rebuilds — the safe lazy path.
func Load(db *DB, h *storage.HeapFile) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !h.Schema().Equal(resultSchema()) {
		return fmt.Errorf("summary: heap file has schema %s, want the summary schema", h.Schema())
	}
	var loadErr error
	err := h.Scan(func(_ storage.RID, row dataset.Row) bool {
		attrs := strings.Split(row[0].AsString(), "\x1f")
		res, err := decodeResult([]byte(row[3].AsString()))
		if err != nil {
			loadErr = err
			return false
		}
		e := &entry{
			fn:     row[1].AsString(),
			attrs:  attrs,
			result: res,
			fresh:  row[2].AsInt() == 1,
		}
		db.insert(e)
		return true
	})
	if err != nil {
		return err
	}
	return loadErr
}

// NewSummaryHeapFile creates a heap file with the summary row schema.
func NewSummaryHeapFile(pool *storage.BufferPool) *storage.HeapFile {
	return storage.NewHeapFile(pool, resultSchema())
}
