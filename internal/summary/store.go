package summary

import (
	"encoding/binary"
	"errors"
	"fmt"

	"statdb/internal/storage"
)

// Crash-consistent persistence for the Summary Database.
//
// A checkpoint never overwrites live data: each generation's entries are
// written to fresh heap pages (a shadow copy), those pages are flushed,
// and only then is a commit record written that names the new
// generation's pages. The commit record alternates between two fixed
// pages (a ping-pong pair) so the previous generation's record is never
// touched while the new one is being written. A crash or torn write at
// any point therefore leaves at least one valid, checksummed commit
// record on the device, and Restore falls back to it.
//
// Old generations' pages are not reclaimed — acceptable for a cache
// whose loss costs only recomputation (Section 3.2), and it keeps the
// commit protocol one page long.

// commit record layout, in the payload of commit page 0 or 1:
//
//	offset 0:  uint32 magic "SDBC"
//	offset 4:  uint64 generation (0 is never committed)
//	offset 12: uint32 entry count
//	offset 16: uint32 heap page count N
//	offset 20: N uint32 heap page ids
const (
	commitMagic  = 0x43424453 // "SDBC" little endian
	commitSlots  = 2
	commitFixed  = 20
	maxHeapPages = (storage.PagePayloadSize - commitFixed) / 4
)

// Store persists a Summary Database on a page device with checkpoint
// and restore semantics. The device's first two pages are reserved as
// commit slots; heap generations follow.
type Store struct {
	pool *storage.BufferPool
	gen  uint64
}

type commitRec struct {
	gen   uint64
	count int
	pages []storage.PageID
}

// NewStore initializes a store on an empty device, reserving the two
// commit pages.
func NewStore(pool *storage.BufferPool) (*Store, error) {
	if pool.Device().NumPages() != 0 {
		return nil, fmt.Errorf("summary: NewStore needs an empty device; use OpenStore")
	}
	for i := 0; i < commitSlots; i++ {
		id, _, err := pool.NewPage()
		if err != nil {
			return nil, err
		}
		if id != storage.PageID(i) {
			return nil, fmt.Errorf("summary: commit slot landed on page %d, want %d", id, i)
		}
		if err := pool.Unpin(id, true); err != nil {
			return nil, err
		}
	}
	if err := pool.FlushAll(); err != nil {
		return nil, err
	}
	return &Store{pool: pool}, nil
}

// OpenStore attaches to a device that previously held a store, adopting
// the newest valid generation. A device where both commit slots are
// damaged or empty opens at generation zero: everything recomputes, the
// cache's universal fallback.
func OpenStore(pool *storage.BufferPool) (*Store, error) {
	if pool.Device().NumPages() < commitSlots {
		return nil, fmt.Errorf("summary: device has %d pages; not a summary store", pool.Device().NumPages())
	}
	s := &Store{pool: pool}
	if rec, ok := s.bestCommit(); ok {
		s.gen = rec.gen
	}
	return s, nil
}

// Generation returns the last committed generation (0 = none).
func (s *Store) Generation() uint64 { return s.gen }

// readCommit decodes commit slot i, reporting ok=false for a damaged or
// never-written slot (checksum failure included — a torn commit write is
// expected, not exceptional).
func (s *Store) readCommit(slot int) (commitRec, bool) {
	p, err := s.pool.Fetch(storage.PageID(slot))
	if err != nil {
		return commitRec{}, false // corrupt or unreadable: not a candidate
	}
	defer s.pool.Unpin(storage.PageID(slot), false)
	buf := p.Payload()
	if binary.LittleEndian.Uint32(buf[0:4]) != commitMagic {
		return commitRec{}, false
	}
	rec := commitRec{
		gen:   binary.LittleEndian.Uint64(buf[4:12]),
		count: int(binary.LittleEndian.Uint32(buf[12:16])),
	}
	n := int(binary.LittleEndian.Uint32(buf[16:20]))
	if rec.gen == 0 || n < 0 || n > maxHeapPages {
		return commitRec{}, false
	}
	limit := s.pool.Device().NumPages()
	for i := 0; i < n; i++ {
		id := storage.PageID(binary.LittleEndian.Uint32(buf[commitFixed+4*i : commitFixed+4*i+4]))
		if int(id) >= limit || id < commitSlots {
			return commitRec{}, false // names a page that cannot exist
		}
		rec.pages = append(rec.pages, id)
	}
	return rec, true
}

// bestCommit returns the valid commit record with the highest
// generation.
func (s *Store) bestCommit() (commitRec, bool) {
	var best commitRec
	found := false
	for i := 0; i < commitSlots; i++ {
		if rec, ok := s.readCommit(i); ok && rec.gen > best.gen {
			best, found = rec, true
		}
	}
	return best, found
}

// Checkpoint writes db's entries as a new generation: shadow heap pages
// first, flushed; then the commit record, flushed. Only after the commit
// page reaches the device is the generation adopted. On any error the
// previous generation remains the committed one.
func (s *Store) Checkpoint(db *DB) error {
	heap := NewSummaryHeapFile(s.pool)
	if err := db.Save(heap, nil); err != nil {
		return err
	}
	if err := s.pool.FlushAll(); err != nil {
		return fmt.Errorf("summary: checkpoint data flush: %w", err)
	}
	pages := heap.Pages()
	if len(pages) > maxHeapPages {
		return fmt.Errorf("summary: checkpoint of %d pages exceeds the %d a commit record can name",
			len(pages), maxHeapPages)
	}
	gen := s.gen + 1
	slot := storage.PageID(gen % commitSlots)
	p, err := s.pool.Fetch(slot)
	if err != nil {
		// The inactive commit slot may itself have been corrupted by an
		// earlier fault; it is about to be rewritten whole, so rebuild
		// the frame from scratch rather than refusing.
		if !errors.Is(err, storage.ErrCorrupt) {
			return err
		}
		p, err = s.rebuildCommitFrame(slot)
		if err != nil {
			return err
		}
	}
	buf := p.Payload()
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:4], commitMagic)
	binary.LittleEndian.PutUint64(buf[4:12], gen)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(db.Len()))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(pages)))
	for i, id := range pages {
		binary.LittleEndian.PutUint32(buf[commitFixed+4*i:commitFixed+4*i+4], uint32(id))
	}
	if err := s.pool.Unpin(slot, true); err != nil {
		return err
	}
	if err := s.pool.FlushAll(); err != nil {
		return fmt.Errorf("summary: commit record flush: %w", err)
	}
	s.gen = gen
	return nil
}

// rebuildCommitFrame re-creates a commit page image in the pool when the
// on-device copy no longer verifies. Writing a fresh enveloped image
// through the device and refetching repopulates the frame.
func (s *Store) rebuildCommitFrame(slot storage.PageID) (*storage.Page, error) {
	buf := make([]byte, storage.PageSize)
	storage.NewPage(buf).Init()
	storage.SealPage(buf)
	if err := s.pool.Device().WritePage(slot, buf); err != nil {
		return nil, err
	}
	return s.pool.Fetch(slot)
}

// Restore loads the newest valid generation into db, degrading per
// record exactly as Load does. With no valid commit record the store is
// empty: the report is zero and every future lookup recomputes — the
// full-rebuild fallback.
func (s *Store) Restore(db *DB) (LoadReport, error) {
	rec, ok := s.bestCommit()
	if !ok {
		return LoadReport{}, nil
	}
	s.gen = rec.gen
	heap := storage.OpenHeapFile(s.pool, resultSchema(), rec.pages, rec.count)
	return Load(db, heap)
}
