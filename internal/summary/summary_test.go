package summary

import (
	"math/rand"
	"testing"

	"statdb/internal/incr"
	"statdb/internal/rules"
	"statdb/internal/stats"
)

// column simulates a view column with update support and a pass counter.
type column struct {
	xs     []float64
	passes int
}

func (c *column) source() Source {
	return func() ([]float64, []bool) {
		c.passes++
		return append([]float64(nil), c.xs...), nil
	}
}

func (c *column) update(i int, v float64) incr.Delta {
	d := incr.UpdateOf(c.xs[i], v)
	c.xs[i] = v
	return d
}

func newColumn(n int, seed int64) *column {
	rng := rand.New(rand.NewSource(seed))
	c := &column{xs: make([]float64, n)}
	for i := range c.xs {
		c.xs[i] = float64(rng.Intn(1000))
	}
	return c
}

func newDB() (*DB, *rules.ManagementDB) {
	mdb := rules.NewManagementDB()
	return NewDB(mdb), mdb
}

func TestScalarCacheHitsAndMisses(t *testing.T) {
	db, _ := newDB()
	c := newColumn(1000, 1)
	v1, err := db.Scalar("mean", "X", c.source())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := stats.Mean(c.xs, nil)
	if v1 != want {
		t.Errorf("mean = %g, want %g", v1, want)
	}
	if c.passes != 1 {
		t.Fatalf("first call made %d passes", c.passes)
	}
	// Second call: pure cache hit, no pass.
	v2, err := db.Scalar("mean", "X", c.source())
	if err != nil || v2 != v1 {
		t.Errorf("cached mean = %g, %v", v2, err)
	}
	if c.passes != 1 {
		t.Errorf("cache hit re-read the column (%d passes)", c.passes)
	}
	ctr := db.Counters()
	if ctr.Hits != 1 || ctr.Misses != 1 {
		t.Errorf("counters = %+v", ctr)
	}
	if _, err := db.Scalar("no-such-fn", "X", c.source()); err == nil {
		t.Error("unknown builtin accepted")
	}
}

func TestIncrementalMaintenance(t *testing.T) {
	db, _ := newDB()
	c := newColumn(500, 2)
	for _, fn := range []string{"count", "sum", "mean", "variance", "sd", "min", "max"} {
		if _, err := db.Scalar(fn, "X", c.source()); err != nil {
			t.Fatal(err)
		}
	}
	passesAfterFill := c.passes
	// Apply 100 updates; the aggregates track exactly. The only allowed
	// extra passes are min/max defeats (deleting the last copy of the
	// extremum), which the counters record as rebuilds.
	for i := 0; i < 100; i++ {
		d := c.update(i, c.xs[i]+50)
		db.OnUpdate("X", []incr.Delta{d})
	}
	if extra := int64(c.passes - passesAfterFill); extra != db.Counters().Rebuilds {
		t.Errorf("incremental maintenance made %d unexplained passes (rebuilds=%d)",
			extra, db.Counters().Rebuilds)
	}
	if db.Counters().Rebuilds > 3 {
		t.Errorf("too many rebuilds for 100 raise-only updates: %d", db.Counters().Rebuilds)
	}
	for fn, want := range map[string]float64{
		"sum":  stats.Sum(c.xs, nil),
		"mean": mustF(t)(stats.Mean(c.xs, nil)),
		"min":  mustF(t)(stats.Min(c.xs, nil)),
		"max":  mustF(t)(stats.Max(c.xs, nil)),
	} {
		got, err := db.Scalar(fn, "X", c.source())
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s = %g, want %g", fn, got, want)
		}
	}
	ctr := db.Counters()
	if ctr.Incremental == 0 {
		t.Error("no incremental applications counted")
	}
}

func mustF(t *testing.T) func(float64, error) float64 {
	return func(v float64, err error) float64 {
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
}

func TestMinDefeatTriggersRebuild(t *testing.T) {
	db, _ := newDB()
	c := &column{xs: []float64{5, 3, 8}}
	if _, err := db.Scalar("min", "X", c.source()); err != nil {
		t.Fatal(err)
	}
	// Raise the unique minimum: defeats the maintainer, forcing a rebuild
	// pass.
	d := c.update(1, 100)
	db.OnUpdate("X", []incr.Delta{d})
	got, err := db.Scalar("min", "X", c.source())
	if err != nil || got != 5 {
		t.Errorf("min = %g, %v", got, err)
	}
	if db.Counters().Rebuilds == 0 {
		t.Error("no rebuild counted")
	}
}

func TestWindowMaintenanceForMedian(t *testing.T) {
	db, _ := newDB()
	c := newColumn(1001, 3)
	if _, err := db.Scalar("median", "X", c.source()); err != nil {
		t.Fatal(err)
	}
	base := c.passes
	for i := 0; i < 50; i++ {
		d := c.update(i, c.xs[i]+10)
		db.OnUpdate("X", []incr.Delta{d})
	}
	got, err := db.Scalar("median", "X", c.source())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := stats.Median(c.xs, nil)
	if got != want {
		t.Errorf("median = %g, want %g", got, want)
	}
	if db.Counters().Slides == 0 {
		t.Error("no window slides counted")
	}
	if c.passes-base > 1 {
		t.Errorf("window maintenance made %d passes for 50 small updates", c.passes-base)
	}
}

func TestWindowRunOffRebuilds(t *testing.T) {
	db, _ := newDB()
	db.WindowCapacity = 7 // tiny window runs off fast
	c := newColumn(1001, 4)
	if _, err := db.Scalar("median", "X", c.source()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		d := c.update(i, c.xs[i]+100000) // one-directional drift
		db.OnUpdate("X", []incr.Delta{d})
	}
	got, err := db.Scalar("median", "X", c.source())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := stats.Median(c.xs, nil)
	if got != want {
		t.Errorf("median = %g, want %g", got, want)
	}
	if db.Counters().Rebuilds == 0 {
		t.Error("one-directional drift never rebuilt a 7-wide window")
	}
}

func TestInvalidateStrategyIsLazy(t *testing.T) {
	db, _ := newDB()
	c := newColumn(300, 5)
	if _, err := db.Scalar("mode", "X", c.source()); err != nil {
		t.Fatal(err)
	}
	base := c.passes
	// mode invalidates on update; no pass until next read.
	for i := 0; i < 20; i++ {
		d := c.update(i, 777)
		db.OnUpdate("X", []incr.Delta{d})
	}
	if c.passes != base {
		t.Errorf("invalidate strategy made %d eager passes", c.passes-base)
	}
	if _, ok := db.Lookup("mode", "X"); ok {
		t.Error("stale mode still served")
	}
	got, err := db.Scalar("mode", "X", c.source())
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := stats.Mode(c.xs, nil)
	if got != want {
		t.Errorf("mode = %g, want %g", got, want)
	}
	if c.passes != base+1 {
		t.Errorf("lazy refill made %d passes", c.passes-base)
	}
}

func TestRegisterCustomResult(t *testing.T) {
	db, _ := newDB()
	c := newColumn(100, 6)
	calls := 0
	compute := func() (Result, error) {
		calls++
		h, err := stats.NewHistogram(c.xs, nil, 10)
		if err != nil {
			return Result{}, err
		}
		return HistogramOf(h), nil
	}
	r1, err := db.Register("histogram10", []string{"X"}, compute)
	if err != nil || r1.Kind != HistogramResult {
		t.Fatalf("Register: %v %v", r1, err)
	}
	r2, err := db.Register("histogram10", []string{"X"}, compute)
	if err != nil || calls != 1 {
		t.Errorf("second Register recomputed (calls=%d, err=%v)", calls, err)
	}
	if r2.Hist.Total() != 100 {
		t.Errorf("histogram total = %d", r2.Hist.Total())
	}
	// Updates invalidate custom entries; next Register recomputes.
	db.OnUpdate("X", []incr.Delta{incr.UpdateOf(c.xs[0], 5)})
	c.xs[0] = 5
	if _, ok := db.Lookup("histogram10", "X"); ok {
		t.Error("stale custom entry served")
	}
	if _, err := db.Register("histogram10", []string{"X"}, compute); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("calls = %d", calls)
	}
}

func TestMultiAttributeEntries(t *testing.T) {
	db, _ := newDB()
	r, err := db.Register("correlation", []string{"X", "Y"}, func() (Result, error) {
		return ScalarOf(0.9), nil
	})
	if err != nil || r.Scalar != 0.9 {
		t.Fatal(err)
	}
	// Updates to either attribute invalidate the pair entry.
	db.OnUpdate("X", []incr.Delta{incr.InsertOf(1)})
	if _, ok := db.Lookup("correlation", "X", "Y"); ok {
		t.Error("pair entry survived update of first attribute")
	}
}

func TestInvalidateByAttributeClustered(t *testing.T) {
	db, _ := newDB()
	cx, cy := newColumn(100, 7), newColumn(100, 8)
	for _, fn := range []string{"mean", "min", "max"} {
		if _, err := db.Scalar(fn, "X", cx.source()); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Scalar(fn, "Y", cy.source()); err != nil {
			t.Fatal(err)
		}
	}
	n := db.Invalidate("X")
	if n != 3 {
		t.Errorf("Invalidate(X) = %d, want 3", n)
	}
	if _, ok := db.Lookup("mean", "X"); ok {
		t.Error("X entry survived")
	}
	if _, ok := db.Lookup("mean", "Y"); !ok {
		t.Error("Y entry damaged by X invalidation")
	}
	// Re-invalidating finds nothing fresh.
	if n := db.Invalidate("X"); n != 0 {
		t.Errorf("second Invalidate = %d", n)
	}
}

func TestPolicies(t *testing.T) {
	// Invalidate-all defers all work; recompute-all pays every update.
	for _, tc := range []struct {
		policy      Policy
		wantEagerIO bool
	}{
		{PolicyInvalidateAll, false},
		{PolicyRecomputeAll, true},
	} {
		db, _ := newDB()
		db.SetPolicy(tc.policy)
		c := newColumn(500, 9)
		if _, err := db.Scalar("mean", "X", c.source()); err != nil {
			t.Fatal(err)
		}
		base := c.passes
		for i := 0; i < 10; i++ {
			d := c.update(i, c.xs[i]+1)
			db.OnUpdate("X", []incr.Delta{d})
		}
		eager := c.passes > base
		if eager != tc.wantEagerIO {
			t.Errorf("%v: eager=%v, want %v", tc.policy, eager, tc.wantEagerIO)
		}
		// Either way the next read is correct.
		got, err := db.Scalar("mean", "X", c.source())
		if err != nil {
			t.Fatal(err)
		}
		want, _ := stats.Mean(c.xs, nil)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%v: mean = %g, want %g", tc.policy, got, want)
		}
	}
}

func TestDumpFigure4Shape(t *testing.T) {
	db, _ := newDB()
	pop := &column{xs: []float64{12300347, 21342193, 2143924, 33422988}}
	sal := &column{xs: []float64{33122, 25883, 29933, 29402}}
	if _, err := db.Scalar("min", "POPULATION", pop.source()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Scalar("max", "POPULATION", pop.source()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Scalar("median", "AVE_SALARY", sal.source()); err != nil {
		t.Fatal(err)
	}
	rows := db.Dump()
	if len(rows) != 3 {
		t.Fatalf("Dump rows = %d", len(rows))
	}
	// Clustered on attribute: AVE_SALARY before POPULATION.
	if rows[0].Attribute != "AVE_SALARY" || rows[1].Attribute != "POPULATION" {
		t.Errorf("clustering broken: %+v", rows)
	}
	if rows[1].Function > rows[2].Function {
		t.Errorf("functions not ordered within attribute: %+v", rows)
	}
	attrs := db.AttributesCached()
	if len(attrs) != 2 || attrs[0] != "AVE_SALARY" {
		t.Errorf("AttributesCached = %v", attrs)
	}
}

func TestCacheSavesSessionPasses(t *testing.T) {
	// The headline claim (Section 3.1): a session that recomputes the
	// same functions repeatedly does far fewer passes with the cache.
	db, _ := newDB()
	c := newColumn(2000, 10)
	const reps = 50
	for i := 0; i < reps; i++ {
		for _, fn := range []string{"mean", "sd", "median", "min", "max"} {
			if _, err := db.Scalar(fn, "X", c.source()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.passes != 5 {
		t.Errorf("cached session made %d passes; want 5 (one per function)", c.passes)
	}
	if hits := db.Counters().Hits; hits != 5*(reps-1) {
		t.Errorf("hits = %d, want %d", hits, 5*(reps-1))
	}
}

func TestResultStrings(t *testing.T) {
	if got := ScalarOf(2.5).String(); got != "2.5" {
		t.Errorf("scalar renders %q", got)
	}
	if got := VectorOf([]float64{1, 2}).String(); got != "[1 2]" {
		t.Errorf("vector renders %q", got)
	}
	h, _ := stats.NewHistogram([]float64{1, 2, 3}, nil, 2)
	if got := HistogramOf(h).String(); got != "histogram(2 bins, 3 values)" {
		t.Errorf("histogram renders %q", got)
	}
	if got := TextOf("note").String(); got != "note" {
		t.Errorf("text renders %q", got)
	}
	for k, want := range map[ResultKind]string{
		ScalarResult: "scalar", VectorResult: "vector",
		HistogramResult: "histogram", TextResult: "text",
	} {
		if k.String() != want {
			t.Errorf("kind %d renders %q", k, k.String())
		}
	}
}
