package summary

import (
	"fmt"

	"statdb/internal/exec"
	"statdb/internal/obs"
	"statdb/internal/stats"
)

// RunSource re-reads one column of the view as a run column. The second
// return is false when the run form is unavailable (read error, store
// detached mid-flight); callers then fall back to the row Source. The
// view layer hands the Summary Database a RunSource only for columns the
// planner heuristic already judged run-eligible, so a non-nil RunSource
// is a decision, not a hint.
type RunSource func() (exec.RunColumn, bool)

// readRunSource runs one compressed column pass under a "scan" span,
// tagging it with the strategy, run count and runs/rows ratio that
// EXPLAIN surfaces. Device charges land on the span exactly as in
// readSource. The caller holds db.mu.
func (db *DB) readRunSource(runs RunSource) (exec.RunColumn, bool) {
	sp := db.tracer.Begin("scan")
	rc, ok := runs()
	if !ok {
		sp.SetAttr("strategy", "runs-unavailable")
		sp.End()
		return exec.RunColumn{}, false
	}
	sp.SetAttr("rows", fmt.Sprintf("%d", rc.Rows))
	sp.SetAttr("runs", fmt.Sprintf("%d", len(rc.Vals)))
	if rc.Rows > 0 {
		sp.SetAttr("ratio", fmt.Sprintf("%.3f", float64(len(rc.Vals))/float64(rc.Rows)))
	}
	sp.SetAttr("strategy", "runs")
	sp.End()
	db.counters.Passes++
	db.met.passes.Inc()
	return rc, true
}

// computeScalarRuns evaluates a built-in function over the run column
// through the run-native kernels, charging one cell cost per run — the
// compression dividend. The fold span carries engine=runs so EXPLAIN
// shows which strategy won, mirroring the serial/parallel split of
// computeScalar.
func (db *DB) computeScalarRuns(fn string, rc exec.RunColumn) (float64, error) {
	cost := exec.DefaultCost()
	nruns := len(rc.Vals)
	ticks := cost.RunTicks(nruns)
	sp := db.tracer.Begin("fold", obs.A("fn", fn), obs.A("engine", "runs"),
		obs.AI("runs", int64(nruns)))
	sp.Charge(ticks)
	defer sp.End()
	db.met.runStrategyHits.Inc()
	db.met.runsFolded.Add(int64(nruns))
	db.met.passTicks.Observe(ticks)
	switch fn {
	case "count":
		n, err := stats.CountRuns(rc)
		return float64(n), err
	case "sum":
		return stats.SumRuns(rc)
	case "mean":
		return stats.MeanRuns(rc)
	case "variance":
		return stats.VarianceRuns(rc)
	case "sd":
		return stats.StdDevRuns(rc)
	case "min":
		return stats.MinRuns(rc)
	case "max":
		return stats.MaxRuns(rc)
	case "median":
		return stats.QuantileRuns(rc, 0.5)
	case "q1":
		return stats.QuantileRuns(rc, 0.25)
	case "q3":
		return stats.QuantileRuns(rc, 0.75)
	case "unique":
		n, err := stats.UniqueCountRuns(rc)
		return float64(n), err
	case "mode":
		m, _, err := stats.ModeRuns(rc)
		return m, err
	}
	return 0, fmt.Errorf("summary: unknown built-in function %q", fn)
}
