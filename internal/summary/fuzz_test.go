package summary

import (
	"testing"

	"statdb/internal/stats"
)

// FuzzDecodeResult mutates valid result encodings: decodeResult must
// return a result or an error for any input — never panic, never
// allocate unbounded memory from a corrupt length prefix.
func FuzzDecodeResult(f *testing.F) {
	h, _ := stats.NewHistogram([]float64{1, 2, 3, 4, 5, 6}, nil, 4)
	seeds := []Result{
		ScalarOf(3.5),
		VectorOf([]float64{1, 2, 3}),
		VectorOf(nil),
		HistogramOf(h),
		HistogramOf(nil),
		TextOf("analysis note"),
	}
	for _, r := range seeds {
		f.Add(encodeResult(r))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := decodeResult(data)
		if err == nil {
			// Whatever decoded must re-encode without panicking: the
			// result is structurally sound, not just accepted.
			_ = encodeResult(res)
		}
	})
}
