package summary

import (
	"path/filepath"
	"testing"

	"statdb/internal/incr"
	"statdb/internal/index"
	"statdb/internal/rules"
	"statdb/internal/stats"
	"statdb/internal/storage"
)

func TestResultCodecRoundTrip(t *testing.T) {
	h, err := stats.NewHistogram([]float64{1, 2, 3, 4, 5}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Result{
		ScalarOf(29402),
		ScalarOf(-1.5e-7),
		VectorOf([]float64{1, 2.5, -3}),
		VectorOf(nil),
		HistogramOf(h),
		TextOf("analysis stalled on AGE outliers"),
		TextOf(""),
	}
	for i, r := range cases {
		got, err := decodeResult(encodeResult(r))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Kind != r.Kind {
			t.Fatalf("case %d: kind %v != %v", i, got.Kind, r.Kind)
		}
		if got.String() != r.String() {
			t.Errorf("case %d: %q != %q", i, got.String(), r.String())
		}
	}
	if _, err := decodeResult(nil); err == nil {
		t.Error("empty encoding decoded")
	}
	if _, err := decodeResult([]byte{99}); err == nil {
		t.Error("unknown kind decoded")
	}
	if _, err := decodeResult([]byte{byte(ScalarResult), 1, 2}); err == nil {
		t.Error("truncated scalar decoded")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	mdb := rules.NewManagementDB()
	db := NewDB(mdb)
	c := newColumn(500, 41)
	for _, fn := range []string{"mean", "min", "max", "median"} {
		if _, err := db.Scalar(fn, "SALARY", c.source()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Register("note", []string{"SALARY"}, func() (Result, error) {
		return TextOf("checked 1982-02-01"), nil
	}); err != nil {
		t.Fatal(err)
	}
	// Make one entry stale so freshness persists too.
	db.OnUpdate("SALARY", []incr.Delta{incr.UpdateOf(c.xs[0], c.xs[0]+1)})
	c.xs[0]++

	dev := storage.NewMemDevice(storage.DefaultDiskCost())
	pool := storage.NewBufferPool(dev, 16)
	heap := NewSummaryHeapFile(pool)
	tree, err := index.NewDiskTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(heap, tree); err != nil {
		t.Fatal(err)
	}

	restored := NewDB(mdb)
	rep, err := Load(restored, heap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 || rep.StaleMarked != 0 || rep.CorruptPages != 0 {
		t.Fatalf("clean load degraded: %v", rep)
	}
	if rep.Loaded != db.Len() {
		t.Fatalf("report says %d loaded, want %d", rep.Loaded, db.Len())
	}
	if restored.Len() != db.Len() {
		t.Fatalf("restored %d entries, want %d", restored.Len(), db.Len())
	}
	// Fresh entries answer without recomputation.
	got, ok := restored.Lookup("mean", "SALARY")
	want, _ := db.Lookup("mean", "SALARY")
	if !ok || got.Scalar != want.Scalar {
		t.Errorf("restored mean = %v, %v (want %v)", got, ok, want)
	}
	// The note was invalidated by the pre-save update (custom entries use
	// the invalidate strategy), so Lookup refuses it — but its payload
	// survived the round trip.
	if _, ok := restored.Lookup("note", "SALARY"); ok {
		t.Error("stale note served as fresh after restore")
	}
	foundNote := false
	for _, row := range restored.Dump() {
		if row.Function == "note" {
			foundNote = true
			if row.Fresh {
				t.Error("note restored as fresh")
			}
			if row.Result != "checked 1982-02-01" {
				t.Errorf("note payload = %q", row.Result)
			}
		}
	}
	if !foundNote {
		t.Error("note entry lost in round trip")
	}
	// Freshness states survive entry by entry.
	freshCount := 0
	for _, row := range restored.Dump() {
		if row.Fresh {
			freshCount++
		}
	}
	wantFresh := 0
	for _, row := range db.Dump() {
		if row.Fresh {
			wantFresh++
		}
	}
	if freshCount != wantFresh {
		t.Errorf("fresh entries = %d, want %d", freshCount, wantFresh)
	}
	// The disk index locates entries by the clustered key.
	_, found, err := tree.Get(entryKey("mean", []string{"SALARY"}))
	if err != nil || !found {
		t.Errorf("index lookup: %v, %v", found, err)
	}
}

func TestSaveLoadAcrossFileDevice(t *testing.T) {
	mdb := rules.NewManagementDB()
	db := NewDB(mdb)
	c := newColumn(100, 42)
	if _, err := db.Scalar("mean", "X", c.source()); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "summary.pages")
	dev, err := storage.OpenFileDevice(path, storage.DefaultDiskCost())
	if err != nil {
		t.Fatal(err)
	}
	pool := storage.NewBufferPool(dev, 8)
	heap := NewSummaryHeapFile(pool)
	tree, err := index.NewDiskTree(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(heap, tree); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the heap file pages enumerate from a fresh scan of the
	// device through a rebuilt HeapFile... heap files track their pages
	// in memory, so reload goes through Load's scan over a file handle
	// built on the same page run. For this test, reopen and re-scan via
	// a new pool wrapping the same pages: page 0.. belong to heap/tree
	// interleaved, so we reuse the saved tree root instead.
	dev2, err := storage.OpenFileDevice(path, storage.DefaultDiskCost())
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	tree2 := index.OpenDiskTree(storage.NewBufferPool(dev2, 8), tree.Root())
	_, found, err := tree2.Get(entryKey("mean", []string{"X"}))
	if err != nil || !found {
		t.Errorf("reopened index lookup: %v, %v", found, err)
	}
}
