package summary

import (
	"math"
	"testing"

	"statdb/internal/exec"
	"statdb/internal/stats"
)

var builtinFns = []string{
	"count", "sum", "mean", "variance", "sd", "min", "max",
	"median", "q1", "q3", "unique", "mode",
}

// TestParallelScalarMatchesSerial: a pool-backed Summary Database must
// answer every built-in over a long column with the serial value —
// bit-identical for the order-insensitive functions, 1e-12 relative for
// the sum-based ones.
func TestParallelScalarMatchesSerial(t *testing.T) {
	exact := map[string]bool{
		"count": true, "min": true, "max": true, "median": true,
		"q1": true, "q3": true, "unique": true, "mode": true,
	}
	c := newColumn(3*ParallelThreshold, 77)
	for _, fn := range builtinFns {
		serial, _ := newDB()
		want, err := serial.Scalar(fn, "X", c.source())
		if err != nil {
			t.Fatal(err)
		}
		par, _ := newDB()
		par.SetExec(exec.New(4), 0)
		got, err := par.Scalar(fn, "X", c.source())
		if err != nil {
			t.Fatal(err)
		}
		if exact[fn] {
			if got != want {
				t.Errorf("%s: parallel %v != serial %v (must be bit-identical)", fn, got, want)
			}
			continue
		}
		scale := math.Max(math.Abs(got), math.Abs(want))
		if got != want && math.Abs(got-want) > 1e-12*scale {
			t.Errorf("%s: parallel %v != serial %v", fn, got, want)
		}
	}
}

// TestParallelThresholdKeepsShortColumnsSerial: below the threshold the
// pool is ignored and results equal builtinScalar bit for bit.
func TestParallelThresholdKeepsShortColumnsSerial(t *testing.T) {
	c := newColumn(ParallelThreshold/4, 5)
	db, _ := newDB()
	db.SetExec(exec.New(8), 0)
	for _, fn := range builtinFns {
		got, err := db.Scalar(fn, "X", c.source())
		if err != nil {
			t.Fatal(err)
		}
		want, err := builtinScalar(fn, c.xs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: %v != serial %v on a short column", fn, got, want)
		}
	}
}

// TestParallelStaleRefillUsesEngine: an invalidated entry's recompute
// path routes through the pool too, and still matches serial.
func TestParallelStaleRefillUsesEngine(t *testing.T) {
	c := newColumn(2*ParallelThreshold+17, 13)
	db, _ := newDB()
	db.SetExec(exec.New(4), 0)
	if _, err := db.Scalar("median", "X", c.source()); err != nil {
		t.Fatal(err)
	}
	db.Invalidate("X")
	got, err := db.Scalar("median", "X", c.source())
	if err != nil {
		t.Fatal(err)
	}
	want, err := stats.Median(c.xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("refilled median %v != serial %v", got, want)
	}
	if n := db.Counters().StaleRefill; n != 1 {
		t.Errorf("StaleRefill = %d, want 1", n)
	}
}
