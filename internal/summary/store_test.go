package summary

import (
	"testing"

	"statdb/internal/rules"
	"statdb/internal/storage"
)

func buildDB(t *testing.T, n int, seed int64) (*DB, *column) {
	t.Helper()
	db := NewDB(rules.NewManagementDB())
	c := newColumn(n, seed)
	for _, fn := range []string{"mean", "min", "max", "sum", "median"} {
		if _, err := db.Scalar(fn, "SALARY", c.source()); err != nil {
			t.Fatal(err)
		}
	}
	return db, c
}

func TestStoreCheckpointRestoreRoundTrip(t *testing.T) {
	db, _ := buildDB(t, 300, 7)
	dev := storage.NewMemDevice(storage.DefaultDiskCost())
	pool := storage.NewBufferPool(dev, 16)
	st, err := NewStore(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", st.Generation())
	}

	// "Crash": drop the pool, reopen the device cold.
	pool2 := storage.NewBufferPool(dev, 16)
	st2, err := OpenStore(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Generation() != 1 {
		t.Fatalf("reopened generation = %d, want 1", st2.Generation())
	}
	restored := NewDB(rules.NewManagementDB())
	rep, err := st2.Restore(restored)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != db.Len() || rep.Dropped != 0 || rep.CorruptPages != 0 {
		t.Fatalf("restore report %v, want %d loaded clean", rep, db.Len())
	}
	for _, fn := range []string{"mean", "min", "max", "sum", "median"} {
		want, _ := db.Lookup(fn, "SALARY")
		got, ok := restored.Lookup(fn, "SALARY")
		if !ok || got.Scalar != want.Scalar {
			t.Fatalf("%s: restored %v (ok=%v), want %v", fn, got.Scalar, ok, want.Scalar)
		}
	}
}

func TestStoreSecondCheckpointSupersedes(t *testing.T) {
	db, c := buildDB(t, 200, 9)
	dev := storage.NewMemDevice(storage.DefaultDiskCost())
	pool := storage.NewBufferPool(dev, 16)
	st, err := NewStore(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	// Change the data and cache a new mean, checkpoint again.
	c.xs[0] += 1000
	db.Invalidate("SALARY")
	mean2, err := db.Scalar("mean", "SALARY", c.source())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", st.Generation())
	}

	restored := NewDB(rules.NewManagementDB())
	st2, err := OpenStore(storage.NewBufferPool(dev, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Restore(restored); err != nil {
		t.Fatal(err)
	}
	got, ok := restored.Lookup("mean", "SALARY")
	if !ok || got.Scalar != mean2 {
		t.Fatalf("restored mean = %v (ok=%v), want generation-2 value %v", got.Scalar, ok, mean2)
	}
}

func TestStoreTornCommitFallsBackToPriorGeneration(t *testing.T) {
	db, c := buildDB(t, 150, 11)
	inner := storage.NewMemDevice(storage.DefaultDiskCost())
	pool := storage.NewBufferPool(inner, 16)
	st, err := NewStore(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	mean1, _ := db.Lookup("mean", "SALARY")

	// Prepare generation 2 and crash it at the commit write.
	c.xs[0] += 500
	db.Invalidate("SALARY")
	if _, err := db.Scalar("mean", "SALARY", c.source()); err != nil {
		t.Fatal(err)
	}
	// The commit page for generation 2 is page (2 % 2) = 0; tear every
	// write to it so the commit record never lands intact.
	probe := &tearPageDevice{Device: inner, page: 0}
	poolB := storage.NewBufferPool(probe, 16)
	stB, err := OpenStore(poolB)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Generation() != 1 {
		t.Fatalf("reopened generation = %d, want 1", stB.Generation())
	}
	if err := stB.Checkpoint(db); err != nil {
		t.Fatal(err) // the tear is silent, as a real torn write is
	}
	if probe.tears == 0 {
		t.Fatal("commit write was never torn; test is vacuous")
	}

	// Crash after the torn commit: restore must fall back to gen 1.
	restored := NewDB(rules.NewManagementDB())
	st2, err := OpenStore(storage.NewBufferPool(inner, 16))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st2.Restore(restored)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Generation() != 1 {
		t.Fatalf("restored generation = %d, want fallback to 1", st2.Generation())
	}
	got, ok := restored.Lookup("mean", "SALARY")
	if !ok || got.Scalar != mean1.Scalar {
		t.Fatalf("fallback mean = %v (ok=%v), want generation-1 value %v", got.Scalar, ok, mean1.Scalar)
	}
	_ = rep
}

// tearPageDevice tears every write to one specific page: the first half
// (envelope, record header) never reaches the device — the crash hit
// before the head got there — while the second half lands. The old first
// half plus the new second half is the inconsistent image a real torn
// write leaves.
type tearPageDevice struct {
	storage.Device
	page  storage.PageID
	tears int
}

func (d *tearPageDevice) WritePage(id storage.PageID, buf []byte) error {
	if id == d.page {
		d.tears++
		torn := make([]byte, storage.PageSize)
		_ = d.Device.ReadPage(id, torn) // old image; zeros if never written
		copy(torn[storage.PageSize/2:], buf[storage.PageSize/2:])
		return d.Device.WritePage(id, torn)
	}
	return d.Device.WritePage(id, buf)
}

func TestStoreBothCommitsLostMeansEmptyRestore(t *testing.T) {
	db, _ := buildDB(t, 100, 13)
	dev := storage.NewMemDevice(storage.DefaultDiskCost())
	pool := storage.NewBufferPool(dev, 16)
	st, err := NewStore(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	// Scribble both commit slots.
	junk := make([]byte, storage.PageSize)
	for i := range junk {
		junk[i] = 0xEE
	}
	for slot := storage.PageID(0); slot < 2; slot++ {
		if err := dev.WritePage(slot, junk); err != nil {
			t.Fatal(err)
		}
	}
	restored := NewDB(rules.NewManagementDB())
	st2, err := OpenStore(storage.NewBufferPool(dev, 16))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st2.Restore(restored)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 0 || restored.Len() != 0 {
		t.Fatalf("restore from lost commits loaded %d entries: %v", restored.Len(), rep)
	}
	if st2.Generation() != 0 {
		t.Fatalf("generation = %d, want 0 (full rebuild)", st2.Generation())
	}
}

func TestRestoreDegradesOnCorruptHeapPage(t *testing.T) {
	db, c := buildDB(t, 400, 17)
	// Many entries so the heap spans several pages: add per-attribute
	// entries on more attributes.
	for i := 0; i < 40; i++ {
		attr := "A" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		if _, err := db.Register("note", []string{attr}, func() (Result, error) {
			return TextOf("attr note with some padding text to fill pages ............................................." + attr), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	dev := storage.NewMemDevice(storage.DefaultDiskCost())
	pool := storage.NewBufferPool(dev, 32)
	st, err := NewStore(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	rec, ok := st.bestCommit()
	if !ok || len(rec.pages) < 2 {
		t.Fatalf("need >=2 heap pages for this test, got %v ok=%v", rec.pages, ok)
	}
	// Flip a payload bit in the first heap page, on the device.
	buf := make([]byte, storage.PageSize)
	if err := dev.ReadPage(rec.pages[0], buf); err != nil {
		t.Fatal(err)
	}
	buf[storage.PageEnvelopeSize+100] ^= 0x4
	if err := dev.WritePage(rec.pages[0], buf); err != nil {
		t.Fatal(err)
	}

	restored := NewDB(rules.NewManagementDB())
	st2, err := OpenStore(storage.NewBufferPool(dev, 32))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st2.Restore(restored)
	if err != nil {
		t.Fatalf("restore failed instead of degrading: %v", err)
	}
	if rep.CorruptPages != 1 {
		t.Fatalf("report %v, want exactly one corrupt page", rep)
	}
	if rep.Loaded == 0 {
		t.Fatalf("nothing salvaged from the intact pages: %v", rep)
	}
	if restored.Len() != rep.Loaded+rep.StaleMarked {
		t.Fatalf("entry count %d != loaded %d + stale %d", restored.Len(), rep.Loaded, rep.StaleMarked)
	}

	// The cache semantics make the degraded restore exact: any entry that
	// was dropped recomputes on access and must equal the clean value.
	for _, fn := range []string{"mean", "min", "max", "sum", "median"} {
		want, _ := db.Lookup(fn, "SALARY")
		got, err := restored.Scalar(fn, "SALARY", c.source())
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Scalar {
			t.Fatalf("%s after degraded restore = %v, want %v", fn, got, want.Scalar)
		}
	}
}
