// Package summary implements the Summary Database of Section 3.2: a
// per-view cache of function-execution results plus standing descriptive
// statistics. Each entry maps a (function name, attribute names) pair to
// a result of varying type — scalar, vector, histogram or text — exactly
// the three-column logical layout of Figure 4. Entries are clustered on
// attribute name and reached through a secondary index on
// (attribute, function), so an update to one attribute finds all its
// cached functions with one clustered scan (Section 4.1).
//
// Updates to the view propagate into the cache according to the
// Management Database's per-function strategy: finite-differenced
// maintainers for the Koenig–Paige aggregates, sliding order-statistic
// windows for quantiles, and invalidate-lazily for everything else
// (Sections 4.2–4.3).
package summary

import (
	"fmt"
	"strconv"
	"strings"

	"statdb/internal/stats"
)

// ResultKind discriminates the varying-length result types of Figure 4.
type ResultKind uint8

const (
	// ScalarResult is a single number (a mean, a median).
	ScalarResult ResultKind = iota
	// VectorResult is a numeric vector (quantiles, frequencies).
	VectorResult
	// HistogramResult is a binned frequency table (two vectors: ranges
	// and counts, as Section 3.2 describes).
	HistogramResult
	// TextResult is a verbal description of the data set — "a statement
	// of how far analysis has proceeded, what difficulties have been
	// encountered" (Section 3.2).
	TextResult
)

func (k ResultKind) String() string {
	switch k {
	case ScalarResult:
		return "scalar"
	case VectorResult:
		return "vector"
	case HistogramResult:
		return "histogram"
	case TextResult:
		return "text"
	}
	return "unknown"
}

// Result is one varying-length cached value.
type Result struct {
	Kind   ResultKind
	Scalar float64
	Vector []float64
	Hist   *stats.Histogram
	Text   string
}

// ScalarOf wraps a float as a Result.
func ScalarOf(v float64) Result { return Result{Kind: ScalarResult, Scalar: v} }

// VectorOf wraps a vector as a Result.
func VectorOf(v []float64) Result { return Result{Kind: VectorResult, Vector: v} }

// HistogramOf wraps a histogram as a Result.
func HistogramOf(h *stats.Histogram) Result { return Result{Kind: HistogramResult, Hist: h} }

// TextOf wraps a note as a Result.
func TextOf(s string) Result { return Result{Kind: TextResult, Text: s} }

// String renders the result for the Figure 4 table.
func (r Result) String() string {
	switch r.Kind {
	case ScalarResult:
		// Integral values print plainly (Figure 4 shows "33,422,988",
		// not exponent notation).
		if r.Scalar == float64(int64(r.Scalar)) && r.Scalar < 1e15 && r.Scalar > -1e15 {
			return strconv.FormatInt(int64(r.Scalar), 10)
		}
		return strconv.FormatFloat(r.Scalar, 'g', -1, 64)
	case VectorResult:
		parts := make([]string, len(r.Vector))
		for i, v := range r.Vector {
			parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		return "[" + strings.Join(parts, " ") + "]"
	case HistogramResult:
		if r.Hist == nil {
			return "histogram(nil)"
		}
		return fmt.Sprintf("histogram(%d bins, %d values)", r.Hist.Bins(), r.Hist.Total())
	case TextResult:
		return r.Text
	}
	return "?"
}
