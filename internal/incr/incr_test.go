package incr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"statdb/internal/stats"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCountSumMean(t *testing.T) {
	xs := []float64{1, 2, 3}
	c := NewCount(xs, nil)
	s := NewSum(xs, nil)
	m := NewMean(xs, nil)
	for _, d := range []Delta{InsertOf(10), DeleteOf(2), UpdateOf(1, 5)} {
		c.Apply(d)
		s.Apply(d)
		m.Apply(d)
	}
	// Column is now {5, 3, 10}.
	if v, _ := c.Value(); v != 3 {
		t.Errorf("count = %g", v)
	}
	if v, _ := s.Value(); v != 18 {
		t.Errorf("sum = %g", v)
	}
	if v, _ := m.Value(); v != 6 {
		t.Errorf("mean = %g", v)
	}
}

func TestMeanEmptyError(t *testing.T) {
	m := NewMean(nil, nil)
	if _, err := m.Value(); err == nil {
		t.Error("mean of empty accepted")
	}
	m.Apply(InsertOf(4))
	if v, err := m.Value(); err != nil || v != 4 {
		t.Errorf("mean = %g, %v", v, err)
	}
}

func TestVarianceMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	m := NewVariance(xs, nil)
	cur := append([]float64(nil), xs...)
	// Stream of random updates; after each, compare to batch variance.
	for step := 0; step < 100; step++ {
		i := rng.Intn(len(cur))
		nv := rng.NormFloat64() * 10
		m.Apply(UpdateOf(cur[i], nv))
		cur[i] = nv
		got, err := m.Value()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := stats.Variance(cur, nil)
		if !almostEq(got, want, 1e-6*math.Max(1, want)) {
			t.Fatalf("step %d: incr %g vs batch %g", step, got, want)
		}
	}
}

func TestStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m := NewStdDev(xs, nil)
	got, err := m.Value()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := stats.StdDev(xs, nil)
	if !almostEq(got, want, 1e-12) {
		t.Errorf("sd = %g, want %g", got, want)
	}
	if _, err := NewStdDev([]float64{1}, nil).Value(); err == nil {
		t.Error("sd of single value accepted")
	}
}

func TestMinMaxHappyPath(t *testing.T) {
	xs := []float64{5, 3, 8, 3}
	mn := NewMin(xs, nil)
	mx := NewMax(xs, nil)
	if v, _ := mn.Value(); v != 3 {
		t.Errorf("min = %g", v)
	}
	if v, _ := mx.Value(); v != 8 {
		t.Errorf("max = %g", v)
	}
	// Insert a new global min.
	if !mn.Apply(InsertOf(1)) {
		t.Fatal("insert defeated min")
	}
	if v, _ := mn.Value(); v != 1 {
		t.Errorf("min = %g", v)
	}
	// Delete one of the duplicate 3s: multiplicity protects the value 3
	// path... 3 is no longer min; delete it anyway: harmless.
	if !mn.Apply(DeleteOf(3)) {
		t.Fatal("delete of non-extremum defeated min")
	}
	if v, _ := mn.Value(); v != 1 {
		t.Errorf("min = %g", v)
	}
	// Deleting a non-extremum never defeats max either.
	if !mx.Apply(DeleteOf(5)) {
		t.Fatal("delete of non-extremum defeated max")
	}
}

func TestMinDefeatedByExtremumDelete(t *testing.T) {
	xs := []float64{5, 3, 8}
	mn := NewMin(xs, nil)
	if mn.Apply(DeleteOf(3)) {
		t.Fatal("deleting the only copy of min should defeat the maintainer")
	}
	if _, err := mn.Value(); err == nil {
		t.Error("defeated maintainer still answers")
	}
	// Rebuild restores it — the Section 4.3 invalidate-then-regenerate path.
	mn.Rebuild([]float64{5, 8}, nil)
	if v, err := mn.Value(); err != nil || v != 5 {
		t.Errorf("after rebuild: %g, %v", v, err)
	}
}

func TestMinMultiplicityProtects(t *testing.T) {
	xs := []float64{3, 3, 7}
	mn := NewMin(xs, nil)
	if !mn.Apply(DeleteOf(3)) {
		t.Fatal("delete with remaining duplicate defeated min")
	}
	if v, _ := mn.Value(); v != 3 {
		t.Errorf("min = %g", v)
	}
	if mn.Apply(DeleteOf(3)) {
		t.Fatal("deleting last copy should defeat")
	}
}

func TestExtremumEmptyTransitions(t *testing.T) {
	mn := NewMin(nil, nil)
	if _, err := mn.Value(); err == nil {
		t.Error("empty min accepted")
	}
	if !mn.Apply(InsertOf(9)) {
		t.Fatal("insert into empty defeated")
	}
	if v, _ := mn.Value(); v != 9 {
		t.Errorf("min = %g", v)
	}
	// Deleting back to empty keeps the state representable.
	if !mn.Apply(DeleteOf(9)) {
		t.Fatal("delete to empty defeated")
	}
	if _, err := mn.Value(); err != ErrEmpty {
		t.Errorf("empty error = %v", err)
	}
}

func TestValidityMaskOnRebuild(t *testing.T) {
	xs := []float64{1, 1000, 3}
	valid := []bool{true, false, true}
	s := NewSum(xs, valid)
	if v, _ := s.Value(); v != 4 {
		t.Errorf("sum = %g", v)
	}
	c := NewCount(xs, valid)
	if v, _ := c.Value(); v != 2 {
		t.Errorf("count = %g", v)
	}
}

func TestStandardSet(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ms := Standard(xs, nil)
	if len(ms) != 7 {
		t.Fatalf("Standard has %d maintainers", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name()] = true
	}
	for _, want := range []string{"count", "sum", "mean", "variance", "sd", "min", "max"} {
		if !names[want] {
			t.Errorf("missing maintainer %q", want)
		}
	}
}

// Property: for any update stream, maintainers that stay valid agree with
// batch recomputation.
func TestMaintainersAgreeWithBatchProperty(t *testing.T) {
	f := func(initial []int8, updates []int8) bool {
		cur := make([]float64, 0, len(initial))
		for _, v := range initial {
			cur = append(cur, float64(v))
		}
		sum := NewSum(cur, nil)
		mean := NewMean(cur, nil)
		vr := NewVariance(cur, nil)
		mn := NewMin(cur, nil)
		for _, u := range updates {
			x := float64(u)
			if u%2 == 0 || len(cur) == 0 {
				sum.Apply(InsertOf(x))
				mean.Apply(InsertOf(x))
				vr.Apply(InsertOf(x))
				if !mn.Apply(InsertOf(x)) {
					mn.Rebuild(append(cur, x), nil)
				}
				cur = append(cur, x)
			} else {
				i := int(math.Abs(x)) % len(cur)
				old := cur[i]
				sum.Apply(DeleteOf(old))
				mean.Apply(DeleteOf(old))
				vr.Apply(DeleteOf(old))
				rest := append(append([]float64(nil), cur[:i]...), cur[i+1:]...)
				if !mn.Apply(DeleteOf(old)) {
					mn.Rebuild(rest, nil)
				}
				cur = rest
			}
		}
		if got, err := sum.Value(); err != nil || !almostEq(got, stats.Sum(cur, nil), 1e-6) {
			return false
		}
		if len(cur) > 0 {
			want, _ := stats.Mean(cur, nil)
			if got, err := mean.Value(); err != nil || !almostEq(got, want, 1e-6) {
				return false
			}
			wantMin, _ := stats.Min(cur, nil)
			if got, err := mn.Value(); err != nil || got != wantMin {
				return false
			}
		}
		if len(cur) > 1 {
			want, _ := stats.Variance(cur, nil)
			if got, err := vr.Value(); err != nil || !almostEq(got, want, 1e-6*math.Max(1, want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
