// Package incr implements incrementally recomputable aggregate functions
// — the finite-differencing idea of Section 4.2. Given a function f
// computed once over a column, the maintainers here are the derived f′:
// they consume a stream of updates (insert / delete / change of a single
// observation) and produce the new function value without re-reading the
// column. Koenig and Paige [KOEN81] treat totals and averages; this
// package covers count, sum, mean, variance/standard deviation (through
// exact sufficient statistics), and min/max with multiplicity, which the
// paper singles out as mostly insensitive to updates but occasionally in
// need of a rebuild.
//
// Apply returns false when incremental maintenance is impossible for the
// update (e.g. deleting the last copy of the current minimum); the caller
// then rebuilds from the data — exactly the invalidate-and-regenerate
// fallback of Section 4.3.
package incr

import (
	"fmt"
	"math"
)

// Delta is one change to the underlying column.
type Delta struct {
	// Insert adds New; Delete removes Old; an update is expressed as the
	// composition Delete(Old)+Insert(New), which Update builds.
	Insert, Delete bool
	Old, New       float64
}

// InsertOf returns a Delta adding x.
func InsertOf(x float64) Delta { return Delta{Insert: true, New: x} }

// DeleteOf returns a Delta removing x.
func DeleteOf(x float64) Delta { return Delta{Delete: true, Old: x} }

// UpdateOf returns a Delta replacing old with new.
func UpdateOf(old, new float64) Delta { return Delta{Insert: true, Delete: true, Old: old, New: new} }

// Maintainer is an incrementally recomputable aggregate: the f′ of
// Figure 5.
type Maintainer interface {
	// Name identifies the function ("sum", "mean", ...).
	Name() string
	// Apply folds one update into the state. It reports false when the
	// state can no longer answer exactly and must be rebuilt.
	Apply(d Delta) bool
	// Value returns the current aggregate value.
	Value() (float64, error)
	// Rebuild recomputes the state from the full column.
	Rebuild(xs []float64, valid []bool)
}

// ErrEmpty reports an aggregate over zero observations.
var ErrEmpty = fmt.Errorf("incr: no observations")

// CountM maintains the observation count.
type CountM struct{ n int64 }

// NewCount returns a count maintainer over the initial column.
func NewCount(xs []float64, valid []bool) *CountM {
	m := &CountM{}
	m.Rebuild(xs, valid)
	return m
}

// Name implements Maintainer.
func (m *CountM) Name() string { return "count" }

// Apply implements Maintainer.
func (m *CountM) Apply(d Delta) bool {
	if d.Delete {
		m.n--
	}
	if d.Insert {
		m.n++
	}
	return true
}

// Value implements Maintainer.
func (m *CountM) Value() (float64, error) { return float64(m.n), nil }

// Rebuild implements Maintainer.
func (m *CountM) Rebuild(xs []float64, valid []bool) {
	m.n = 0
	for i := range xs {
		if valid == nil || valid[i] {
			m.n++
		}
	}
}

// SumM maintains the sum — the canonical Koenig–Paige total.
type SumM struct {
	n   int64
	sum float64
}

// NewSum returns a sum maintainer over the initial column.
func NewSum(xs []float64, valid []bool) *SumM {
	m := &SumM{}
	m.Rebuild(xs, valid)
	return m
}

// Name implements Maintainer.
func (m *SumM) Name() string { return "sum" }

// Apply implements Maintainer.
func (m *SumM) Apply(d Delta) bool {
	if d.Delete {
		m.sum -= d.Old
		m.n--
	}
	if d.Insert {
		m.sum += d.New
		m.n++
	}
	return true
}

// Value implements Maintainer.
func (m *SumM) Value() (float64, error) { return m.sum, nil }

// Rebuild implements Maintainer.
func (m *SumM) Rebuild(xs []float64, valid []bool) {
	m.n, m.sum = 0, 0
	for i, x := range xs {
		if valid == nil || valid[i] {
			m.sum += x
			m.n++
		}
	}
}

// MeanM maintains the mean through (n, sum).
type MeanM struct{ SumM }

// NewMean returns a mean maintainer over the initial column.
func NewMean(xs []float64, valid []bool) *MeanM {
	m := &MeanM{}
	m.Rebuild(xs, valid)
	return m
}

// Name implements Maintainer.
func (m *MeanM) Name() string { return "mean" }

// Value implements Maintainer.
func (m *MeanM) Value() (float64, error) {
	if m.n == 0 {
		return 0, ErrEmpty
	}
	return m.sum / float64(m.n), nil
}

// VarianceM maintains the sample variance via the sufficient statistics
// (n, Σx, Σx²). Deletion is exact: the statistics subtract cleanly, the
// finite-differencing property Koenig–Paige exploit for averages extended
// one moment higher.
type VarianceM struct {
	n          int64
	sum, sumsq float64
}

// NewVariance returns a variance maintainer over the initial column.
func NewVariance(xs []float64, valid []bool) *VarianceM {
	m := &VarianceM{}
	m.Rebuild(xs, valid)
	return m
}

// Name implements Maintainer.
func (m *VarianceM) Name() string { return "variance" }

// Apply implements Maintainer.
func (m *VarianceM) Apply(d Delta) bool {
	if d.Delete {
		m.sum -= d.Old
		m.sumsq -= d.Old * d.Old
		m.n--
	}
	if d.Insert {
		m.sum += d.New
		m.sumsq += d.New * d.New
		m.n++
	}
	return true
}

// Value implements Maintainer.
func (m *VarianceM) Value() (float64, error) {
	if m.n < 2 {
		return 0, fmt.Errorf("incr: variance needs >= 2 observations, have %d", m.n)
	}
	fn := float64(m.n)
	v := (m.sumsq - m.sum*m.sum/fn) / (fn - 1)
	if v < 0 {
		v = 0 // guard tiny negative from cancellation
	}
	return v, nil
}

// Rebuild implements Maintainer.
func (m *VarianceM) Rebuild(xs []float64, valid []bool) {
	m.n, m.sum, m.sumsq = 0, 0, 0
	for i, x := range xs {
		if valid == nil || valid[i] {
			m.sum += x
			m.sumsq += x * x
			m.n++
		}
	}
}

// StdDevM maintains the sample standard deviation.
type StdDevM struct{ VarianceM }

// NewStdDev returns a standard-deviation maintainer over the initial column.
func NewStdDev(xs []float64, valid []bool) *StdDevM {
	m := &StdDevM{}
	m.Rebuild(xs, valid)
	return m
}

// Name implements Maintainer.
func (m *StdDevM) Name() string { return "sd" }

// Value implements Maintainer.
func (m *StdDevM) Value() (float64, error) {
	v, err := m.VarianceM.Value()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// extremumM maintains min or max with the multiplicity of the current
// extremum. As Section 4.2 observes, "most updates to the data set will
// not affect the min or max values"; the one case that defeats it —
// deleting the last copy of the extremum — reports a rebuild.
type extremumM struct {
	name  string
	less  func(a, b float64) bool // a strictly better than b
	n     int64
	ext   float64
	mult  int64 // copies of ext present
	valid bool  // state usable (false after a defeated delete)
}

// NewMin returns a min maintainer over the initial column.
func NewMin(xs []float64, valid []bool) Maintainer {
	m := &extremumM{name: "min", less: func(a, b float64) bool { return a < b }}
	m.Rebuild(xs, valid)
	return m
}

// NewMax returns a max maintainer over the initial column.
func NewMax(xs []float64, valid []bool) Maintainer {
	m := &extremumM{name: "max", less: func(a, b float64) bool { return a > b }}
	m.Rebuild(xs, valid)
	return m
}

func (m *extremumM) Name() string { return m.name }

func (m *extremumM) Apply(d Delta) bool {
	if !m.valid {
		return false
	}
	if d.Delete {
		m.n--
		if d.Old == m.ext {
			m.mult--
			if m.mult == 0 {
				if m.n == 0 {
					m.valid = true // empty is representable
				} else {
					m.valid = false // next extremum unknown without a scan
					return false
				}
			}
		}
	}
	if d.Insert {
		m.n++
		switch {
		case m.n == 1 || m.less(d.New, m.ext):
			m.ext, m.mult = d.New, 1
		case d.New == m.ext:
			m.mult++
		}
	}
	return true
}

func (m *extremumM) Value() (float64, error) {
	if !m.valid {
		return 0, fmt.Errorf("incr: %s state invalidated; rebuild required", m.name)
	}
	if m.n == 0 {
		return 0, ErrEmpty
	}
	return m.ext, nil
}

func (m *extremumM) Rebuild(xs []float64, valid []bool) {
	m.n, m.mult, m.valid = 0, 0, true
	for i, x := range xs {
		if valid != nil && !valid[i] {
			continue
		}
		m.n++
		switch {
		case m.n == 1 || m.less(x, m.ext):
			m.ext, m.mult = x, 1
		case x == m.ext:
			m.mult++
		}
	}
}

// Standard is the maintainer set the Summary Database installs per
// attribute: count, sum, mean, variance, sd, min, max.
func Standard(xs []float64, valid []bool) []Maintainer {
	return []Maintainer{
		NewCount(xs, valid),
		NewSum(xs, valid),
		NewMean(xs, valid),
		NewVariance(xs, valid),
		NewStdDev(xs, valid),
		NewMin(xs, valid),
		NewMax(xs, valid),
	}
}
