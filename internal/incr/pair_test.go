package incr

import (
	"math"
	"math/rand"
	"testing"

	"statdb/internal/stats"
)

func TestCovarianceMMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 300
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 5
		ys[i] = 2*xs[i] + rng.NormFloat64()
	}
	m, err := NewCovariance(xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != int64(n) {
		t.Fatalf("N = %d", m.N())
	}
	check := func() {
		t.Helper()
		got, err := m.Value()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := stats.Covariance(xs, ys, nil, nil)
		if !almostEq(got, want, 1e-9*math.Max(1, math.Abs(want))) {
			t.Fatalf("cov = %g, want %g", got, want)
		}
		gr, err := m.Correlation()
		if err != nil {
			t.Fatal(err)
		}
		wr, _ := stats.Correlation(xs, ys, nil, nil)
		if !almostEq(gr, wr, 1e-9) {
			t.Fatalf("corr = %g, want %g", gr, wr)
		}
	}
	check()
	// Stream of pair updates.
	for step := 0; step < 200; step++ {
		i := rng.Intn(n)
		nx, ny := rng.NormFloat64()*5, rng.NormFloat64()*5
		m.Apply(PairUpdateOf(xs[i], ys[i], nx, ny))
		xs[i], ys[i] = nx, ny
		if step%50 == 0 {
			check()
		}
	}
	check()
}

func TestCovarianceMValidity(t *testing.T) {
	xs := []float64{1, 2, 999, 3}
	ys := []float64{2, 4, -999, 6}
	xv := []bool{true, true, false, true}
	m, err := NewCovariance(xs, ys, xv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	r, err := m.Correlation()
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("corr = %g, %v", r, err)
	}
}

func TestCovarianceMErrors(t *testing.T) {
	if _, err := NewCovariance([]float64{1}, []float64{1, 2}, nil, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	m, _ := NewCovariance([]float64{1}, []float64{1}, nil, nil)
	if _, err := m.Value(); err == nil {
		t.Error("single pair accepted")
	}
	// Constant input breaks correlation but not covariance.
	m2, _ := NewCovariance([]float64{1, 1}, []float64{2, 3}, nil, nil)
	if _, err := m2.Correlation(); err == nil {
		t.Error("constant-x correlation accepted")
	}
	if _, err := m2.Value(); err != nil {
		t.Errorf("constant-x covariance rejected: %v", err)
	}
	// Delete to below 2 pairs.
	m3, _ := NewCovariance([]float64{1, 2}, []float64{3, 4}, nil, nil)
	m3.Apply(PairDeleteOf(1, 3))
	if _, err := m3.Value(); err == nil {
		t.Error("covariance after delete-to-1 accepted")
	}
}
