package incr

import (
	"fmt"
	"math"
)

// Pair maintainers: finite differencing extends beyond single columns —
// Koenig–Paige difference products of attributes too, which gives
// incrementally recomputable covariance and correlation for the
// relationship questions of Section 2.2.

// PairDelta is one change to a paired observation (x, y).
type PairDelta struct {
	Insert, Delete bool
	OldX, OldY     float64
	NewX, NewY     float64
}

// PairInsertOf returns a PairDelta adding (x, y).
func PairInsertOf(x, y float64) PairDelta { return PairDelta{Insert: true, NewX: x, NewY: y} }

// PairDeleteOf returns a PairDelta removing (x, y).
func PairDeleteOf(x, y float64) PairDelta { return PairDelta{Delete: true, OldX: x, OldY: y} }

// PairUpdateOf returns a PairDelta replacing (ox, oy) with (nx, ny).
func PairUpdateOf(ox, oy, nx, ny float64) PairDelta {
	return PairDelta{Insert: true, Delete: true, OldX: ox, OldY: oy, NewX: nx, NewY: ny}
}

// CovarianceM maintains the sample covariance of a pair of columns via
// the sufficient statistics (n, Σx, Σy, Σxy).
type CovarianceM struct {
	n             int64
	sx, sy        float64
	sxx, syy, sxy float64
}

// NewCovariance builds the maintainer over the complete pairs of two
// columns (valid masks may be nil).
func NewCovariance(xs, ys []float64, xvalid, yvalid []bool) (*CovarianceM, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("incr: covariance over %d vs %d observations", len(xs), len(ys))
	}
	m := &CovarianceM{}
	m.Rebuild(xs, ys, xvalid, yvalid)
	return m, nil
}

// Name identifies the function.
func (m *CovarianceM) Name() string { return "covariance" }

// Apply folds one pair update. Always succeeds: the sufficient
// statistics subtract exactly.
func (m *CovarianceM) Apply(d PairDelta) {
	if d.Delete {
		m.n--
		m.sx -= d.OldX
		m.sy -= d.OldY
		m.sxx -= d.OldX * d.OldX
		m.syy -= d.OldY * d.OldY
		m.sxy -= d.OldX * d.OldY
	}
	if d.Insert {
		m.n++
		m.sx += d.NewX
		m.sy += d.NewY
		m.sxx += d.NewX * d.NewX
		m.syy += d.NewY * d.NewY
		m.sxy += d.NewX * d.NewY
	}
}

// Value returns the sample covariance (divisor n-1).
func (m *CovarianceM) Value() (float64, error) {
	if m.n < 2 {
		return 0, fmt.Errorf("incr: covariance needs >= 2 pairs, have %d", m.n)
	}
	fn := float64(m.n)
	return (m.sxy - m.sx*m.sy/fn) / (fn - 1), nil
}

// Correlation returns the Pearson correlation from the same statistics.
func (m *CovarianceM) Correlation() (float64, error) {
	if m.n < 2 {
		return 0, fmt.Errorf("incr: correlation needs >= 2 pairs, have %d", m.n)
	}
	fn := float64(m.n)
	vx := m.sxx - m.sx*m.sx/fn
	vy := m.syy - m.sy*m.sy/fn
	if vx <= 0 || vy <= 0 {
		return 0, fmt.Errorf("incr: correlation undefined for constant input")
	}
	cov := m.sxy - m.sx*m.sy/fn
	return cov / math.Sqrt(vx*vy), nil
}

// Rebuild recomputes the statistics from the full columns.
func (m *CovarianceM) Rebuild(xs, ys []float64, xvalid, yvalid []bool) {
	m.n, m.sx, m.sy, m.sxx, m.syy, m.sxy = 0, 0, 0, 0, 0, 0
	for i := range xs {
		if xvalid != nil && !xvalid[i] {
			continue
		}
		if yvalid != nil && !yvalid[i] {
			continue
		}
		m.Apply(PairInsertOf(xs[i], ys[i]))
	}
}

// N returns the number of tracked pairs.
func (m *CovarianceM) N() int64 { return m.n }
