package analysis

import (
	"strings"
)

// ChargeTrack (R9) keeps I/O on query paths visible to the cost model:
// any function reachable from a query verb (the exec* executors in
// internal/query) that calls a colstore or storage read API must have a
// Charge/ChargeTicks/ChargePages site on every call path from the verb
// to the read — in its own body, or in every reachable caller. F-IVM
// style incremental maintenance (PAPERS.md) depends on exact per-delta
// accounting, and an uncharged page-read loop three calls deep is
// exactly the regression unit tests never see: the answer is right, the
// ticks are silently free. The analysis is interprocedural over the
// package call graph; paths that do not start at a verb (recovery,
// checkpointing, experiments) are not constrained.
type ChargeTrack struct{}

// chargeReadPkgs are the storage layers whose read APIs must be
// metered when reached from a verb.
var chargeReadPkgs = map[string]bool{
	"internal/colstore": true,
	"internal/storage":  true,
}

// chargeReadNames are the page- and row-reading entry points of those
// packages. Metadata accessors (Rows, Schema, ColumnRuns) stay free:
// they read cached headers, not pages.
var chargeReadNames = map[string]bool{
	"ScanChunks":        true,
	"ScanNumericChunks": true,
	"ScanRunChunks":     true,
	"ScanColumn":        true,
	"NumericColumn":     true,
	"NumericRunColumn":  true,
	"RowAt":             true,
	"Materialize":       true,
	"Dict":              true,
	"Get":               true,
	"Scan":              true,
	"ScanTolerant":      true,
	"ReadPage":          true,
}

// ID implements Rule.
func (ChargeTrack) ID() string { return "charge-tracking" }

// Doc implements Rule.
func (ChargeTrack) Doc() string {
	return "colstore/storage reads reachable from a query verb charge the tracer/budget on every path (PR 10 contract)"
}

// Check implements Rule.
func (ChargeTrack) Check(t *Tree, rep *Reporter) {
	g := t.Graph()
	var roots []FuncKey
	for key := range g.Funcs {
		if key.Pkg == "internal/query" && strings.HasPrefix(key.Name, "exec") {
			roots = append(roots, key)
		}
	}
	if len(roots) == 0 {
		return
	}
	reachable, charged := g.Charged(roots)
	type dedupKey struct {
		fn  FuncKey
		api string
	}
	seen := map[dedupKey]bool{}
	for _, key := range g.SortedFuncs() {
		if !reachable[key] || charged[key] {
			continue
		}
		fi := g.Funcs[key]
		for _, cs := range fi.Calls {
			if !cs.Resolved || !chargeReadPkgs[cs.Callee.Pkg] || !chargeReadNames[cs.Callee.Name] {
				continue
			}
			// Reads issued by the storage layers themselves are charged
			// by whoever drove them across the package boundary.
			if chargeReadPkgs[key.Pkg] {
				continue
			}
			dk := dedupKey{key, cs.Callee.String()}
			if seen[dk] {
				continue
			}
			seen[dk] = true
			rep.Reportf("charge-tracking", cs.Call.Pos(),
				"%s reads %s on a query-verb path but neither it nor its callers charge the tracer/budget",
				key, cs.Callee)
		}
	}
}
