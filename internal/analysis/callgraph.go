package analysis

import (
	"go/ast"
	"go/token"
	"path"
	"sort"
	"strings"
	"sync"
)

// This file is the interprocedural layer under the contract rules: a
// package-level call graph over the parsed tree, built with the same
// stdlib-only discipline as the rest of the checker. There is no
// go/types pass — method calls are resolved syntactically through the
// tree's own concrete types (receiver idents, locals bound to composite
// literals or constructor results, struct field chains), which covers
// the engine's dominant idioms exactly: a call the resolver cannot
// attribute simply produces no edge, so every interprocedural rule
// degrades toward not flagging rather than toward false positives.

// TypeRef names a concrete named type declared somewhere in the tree.
// The zero value means "unknown".
type TypeRef struct {
	Pkg  string // package directory, root-relative
	Name string
}

// Known reports whether the reference resolved.
func (t TypeRef) Known() bool { return t.Name != "" }

func (t TypeRef) String() string {
	if !t.Known() {
		return "?"
	}
	return path.Base(t.Pkg) + "." + t.Name
}

// FuncKey identifies one function or method declaration.
type FuncKey struct {
	Pkg  string // package directory, root-relative
	Recv string // receiver type name, "" for plain functions
	Name string
}

func (k FuncKey) String() string {
	if k.Recv != "" {
		return path.Base(k.Pkg) + "." + k.Recv + "." + k.Name
	}
	return path.Base(k.Pkg) + "." + k.Name
}

// LockKey names a mutex-typed field on a concrete type: the identity a
// `// guarded by <mu>` annotation binds an access to.
type LockKey struct {
	Type  TypeRef
	Field string
}

func (l LockKey) String() string { return l.Type.Name + "." + l.Field }

// CallSite is one call expression inside a function body, with the
// callee resolved where the syntactic type information allows.
type CallSite struct {
	Caller   FuncKey
	Call     *ast.CallExpr
	Callee   FuncKey
	Resolved bool
	Go       bool // lexically inside a go statement (runs on a new goroutine)
	Deferred bool
}

// LockOp is a call to Lock/RLock/Unlock/RUnlock on a resolved
// `<base>.<field>` mutex chain.
type LockOp struct {
	Lock LockKey
	Op   string
	Go   ast.Node // enclosing go statement, nil on the main path
	Pos  token.Pos
}

// FieldAccess is a read or write of a resolved struct field.
type FieldAccess struct {
	Type  TypeRef
	Field string
	Pos   token.Pos
	Go    ast.Node // enclosing go statement, nil on the main path
	// Fresh marks accesses rooted at a local the function itself bound
	// to a composite literal — constructor initialization before the
	// value can be shared.
	Fresh bool
}

// FuncInfo is the per-function summary the rules consume.
type FuncInfo struct {
	Key      FuncKey
	Decl     *ast.FuncDecl
	FileRel  string
	Calls    []*CallSite
	Locks    []LockOp
	Accesses []FieldAccess
	// Charges are syntactic Charge/ChargeTicks/ChargePages call
	// positions — the cost-accounting fact, matched by selector name so
	// a failed receiver resolution can never hide a charge.
	Charges []token.Pos
	// RecvName/ParamNames are the flattened parameter identifiers:
	// slot 0 is the receiver (empty for plain functions), slots 1..n
	// the declared parameters in order.
	RecvName   string
	ParamNames []string
}

// structInfo records a struct declaration and its field type
// expressions, kept with their declaring file so imports resolve in the
// right context.
type structInfo struct {
	ref    TypeRef
	file   *fileCtx
	fields map[string]ast.Expr
}

// fileCtx caches a file's import table: local name -> package dir.
type fileCtx struct {
	file    *File
	pkg     *Package
	imports map[string]string
}

// Graph is the package-level call graph plus the type and declaration
// indexes the interprocedural rules share. Build once per tree via
// Tree.Graph.
type Graph struct {
	tree    *Tree
	Funcs   map[FuncKey]*FuncInfo
	structs map[TypeRef]*structInfo
	types   map[TypeRef]bool // every named type declared in the tree
	callers map[FuncKey][]*CallSite
	sites   map[*ast.CallExpr]*CallSite
	pkgDirs map[string]bool
}

var graphCache sync.Map // *Tree -> *Graph

// Graph returns the tree's call graph, building it on first use. The
// result is cached per tree and safe for concurrent readers, so
// parallel rules share one build.
func (t *Tree) Graph() *Graph {
	if g, ok := graphCache.Load(t); ok {
		return g.(*Graph)
	}
	g := buildGraph(t)
	actual, _ := graphCache.LoadOrStore(t, g)
	return actual.(*Graph)
}

// SiteFor returns the call-site record for a call expression, or nil.
func (g *Graph) SiteFor(call *ast.CallExpr) *CallSite { return g.sites[call] }

// Callers returns the call sites that resolve to key.
func (g *Graph) Callers(key FuncKey) []*CallSite { return g.callers[key] }

// SortedFuncs returns the function keys in deterministic order.
func (g *Graph) SortedFuncs() []FuncKey {
	keys := make([]FuncKey, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Recv != b.Recv {
			return a.Recv < b.Recv
		}
		return a.Name < b.Name
	})
	return keys
}

func buildGraph(t *Tree) *Graph {
	g := &Graph{
		tree:    t,
		Funcs:   map[FuncKey]*FuncInfo{},
		structs: map[TypeRef]*structInfo{},
		types:   map[TypeRef]bool{},
		callers: map[FuncKey][]*CallSite{},
		sites:   map[*ast.CallExpr]*CallSite{},
		pkgDirs: map[string]bool{},
	}
	for _, pkg := range t.Pkgs {
		g.pkgDirs[pkg.Rel] = true
	}
	ctxs := map[*File]*fileCtx{}
	// Pass 1: index every named type, struct layout and function decl.
	for _, pkg := range t.Pkgs {
		for _, f := range pkg.Files {
			fc := &fileCtx{file: f, pkg: pkg, imports: g.importTable(f.Ast)}
			ctxs[f] = fc
			for _, decl := range f.Ast.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						ref := TypeRef{Pkg: pkg.Rel, Name: ts.Name.Name}
						g.types[ref] = true
						if st, ok := ts.Type.(*ast.StructType); ok {
							si := &structInfo{ref: ref, file: fc, fields: map[string]ast.Expr{}}
							for _, fld := range st.Fields.List {
								for _, name := range fld.Names {
									si.fields[name.Name] = fld.Type
								}
							}
							g.structs[ref] = si
						}
					}
				case *ast.FuncDecl:
					key := g.funcKey(pkg, d)
					fi := &FuncInfo{Key: key, Decl: d, FileRel: f.Rel}
					if d.Recv != nil && len(d.Recv.List) == 1 && len(d.Recv.List[0].Names) == 1 {
						fi.RecvName = d.Recv.List[0].Names[0].Name
					}
					if d.Type.Params != nil {
						for _, p := range d.Type.Params.List {
							for _, n := range p.Names {
								fi.ParamNames = append(fi.ParamNames, n.Name)
							}
						}
					}
					g.Funcs[key] = fi
				}
			}
		}
	}
	// Pass 2: per-function environments, call sites and access facts.
	for _, pkg := range t.Pkgs {
		for _, f := range pkg.Files {
			fc := ctxs[f]
			for _, decl := range f.Ast.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				fi := g.Funcs[g.funcKey(pkg, fn)]
				g.analyzeFunc(fc, fi, fn)
			}
		}
	}
	for _, fi := range g.Funcs {
		for _, cs := range fi.Calls {
			if cs.Resolved {
				g.callers[cs.Callee] = append(g.callers[cs.Callee], cs)
			}
		}
	}
	return g
}

func (g *Graph) funcKey(pkg *Package, d *ast.FuncDecl) FuncKey {
	key := FuncKey{Pkg: pkg.Rel, Name: d.Name.Name}
	if d.Recv != nil && len(d.Recv.List) == 1 {
		key.Recv = baseTypeName(d.Recv.List[0].Type)
	}
	return key
}

// baseTypeName unwraps *T, (T) and generic instantiations to the
// underlying type identifier.
func baseTypeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return baseTypeName(x.X)
	case *ast.ParenExpr:
		return baseTypeName(x.X)
	case *ast.IndexExpr:
		return baseTypeName(x.X)
	case *ast.IndexListExpr:
		return baseTypeName(x.X)
	}
	return ""
}

// importTable maps each import's local name to the loaded package dir
// it denotes, matching import paths against the tree's package
// directories by path suffix (the module prefix is irrelevant, which
// keeps fixture trees and the real module on the same footing).
func (g *Graph) importTable(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		rel := ""
		for dir := range g.pkgDirs {
			if p == dir || strings.HasSuffix(p, "/"+dir) {
				if len(dir) > len(rel) {
					rel = dir
				}
			}
		}
		if rel == "" {
			continue
		}
		name := path.Base(p)
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				continue
			}
			name = imp.Name.Name
		}
		out[name] = rel
	}
	return out
}

// resolveTypeExpr maps a type expression to a TypeRef in fc's import
// context. Pointers, parens, slices and arrays collapse to the element
// type — precise enough for field-chain and method resolution, which is
// all the rules need.
func (g *Graph) resolveTypeExpr(fc *fileCtx, e ast.Expr) TypeRef {
	switch x := e.(type) {
	case *ast.Ident:
		ref := TypeRef{Pkg: fc.pkg.Rel, Name: x.Name}
		if g.types[ref] {
			return ref
		}
	case *ast.StarExpr:
		return g.resolveTypeExpr(fc, x.X)
	case *ast.ParenExpr:
		return g.resolveTypeExpr(fc, x.X)
	case *ast.ArrayType:
		return g.resolveTypeExpr(fc, x.Elt)
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if rel, ok := fc.imports[id.Name]; ok {
				ref := TypeRef{Pkg: rel, Name: x.Sel.Name}
				if g.types[ref] {
					return ref
				}
			}
		}
	}
	return TypeRef{}
}

// env is the per-function syntactic typing environment.
type env struct {
	vars  map[string]TypeRef
	fresh map[string]bool
}

// analyzeFunc builds fn's environment, then records call sites, lock
// operations, guarded-field accesses and charge calls.
func (g *Graph) analyzeFunc(fc *fileCtx, fi *FuncInfo, fn *ast.FuncDecl) {
	e := &env{vars: map[string]TypeRef{}, fresh: map[string]bool{}}
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		e.vars[fn.Recv.List[0].Names[0].Name] = g.resolveTypeExpr(fc, fn.Recv.List[0].Type)
	}
	bindFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, p := range fl.List {
			t := g.resolveTypeExpr(fc, p.Type)
			for _, n := range p.Names {
				if t.Known() {
					e.vars[n.Name] = t
				}
			}
		}
	}
	bindFieldList(fn.Type.Params)
	bindFieldList(fn.Type.Results)
	// Two environment passes let a binding reference one made later in
	// the body (rare, but free to support at this scale).
	for i := 0; i < 2; i++ {
		g.bindLocals(fc, e, fn.Body)
	}
	g.walkFacts(fc, fi, e, fn.Body, nil, false)
}

// bindLocals populates e from declarations and assignments in body,
// including nested function literals (closures share the enclosing
// function's facts, matching how the rules attribute their bodies).
func (g *Graph) bindLocals(fc *fileCtx, e *env, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ValueSpec:
			t := TypeRef{}
			if st.Type != nil {
				t = g.resolveTypeExpr(fc, st.Type)
			}
			for i, name := range st.Names {
				vt := t
				if !vt.Known() && i < len(st.Values) {
					vt = g.typeOf(fc, e, st.Values[i])
				}
				if vt.Known() {
					e.vars[name.Name] = vt
				}
			}
		case *ast.AssignStmt:
			g.bindAssign(fc, e, st)
		case *ast.RangeStmt:
			if v, ok := st.Value.(*ast.Ident); ok && v.Name != "_" {
				// Slice element types collapse through typeOf; map and
				// channel ranges resolve to unknown, which is correct
				// enough (their element types are rarely tree structs).
				if t := g.typeOf(fc, e, st.X); t.Known() {
					e.vars[v.Name] = t
				}
			}
			if k, ok := st.Key.(*ast.Ident); ok && k.Name != "_" {
				delete(e.vars, k.Name) // index/key vars are never tree types
			}
		case *ast.FuncLit:
			for _, p := range st.Type.Params.List {
				t := g.resolveTypeExpr(fc, p.Type)
				for _, nm := range p.Names {
					if t.Known() {
						e.vars[nm.Name] = t
					}
				}
			}
		}
		return true
	})
}

func (g *Graph) bindAssign(fc *fileCtx, e *env, st *ast.AssignStmt) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value: a call's result tuple or a comma-ok form.
		switch rhs := st.Rhs[0].(type) {
		case *ast.CallExpr:
			callee, resolved := g.resolveCall(fc, e, rhs)
			if !resolved {
				return
			}
			fi := g.Funcs[callee]
			if fi == nil || fi.Decl.Type.Results == nil {
				return
			}
			var results []ast.Expr
			for _, r := range fi.Decl.Type.Results.List {
				n := len(r.Names)
				if n == 0 {
					n = 1
				}
				for i := 0; i < n; i++ {
					results = append(results, r.Type)
				}
			}
			calleeCtx := g.fileCtxOf(callee)
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || i >= len(results) || calleeCtx == nil {
					continue
				}
				if t := g.resolveTypeExpr(calleeCtx, results[i]); t.Known() {
					e.vars[id.Name] = t
				}
			}
		case *ast.TypeAssertExpr:
			if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" && rhs.Type != nil {
				if t := g.resolveTypeExpr(fc, rhs.Type); t.Known() {
					e.vars[id.Name] = t
				}
			}
		}
		return
	}
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" || i >= len(st.Rhs) {
			continue
		}
		rhs := st.Rhs[i]
		if t := g.typeOf(fc, e, rhs); t.Known() {
			e.vars[id.Name] = t
		}
		if isCompositeLit(rhs) {
			e.fresh[id.Name] = true
		}
	}
}

func isCompositeLit(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := x.X.(*ast.CompositeLit)
			return ok
		}
	}
	return false
}

// fileCtxOf rebuilds the declaring file context for a function key.
func (g *Graph) fileCtxOf(key FuncKey) *fileCtx {
	fi := g.Funcs[key]
	if fi == nil {
		return nil
	}
	for _, pkg := range g.tree.Pkgs {
		if pkg.Rel != key.Pkg {
			continue
		}
		for _, f := range pkg.Files {
			if f.Rel == fi.FileRel {
				return &fileCtx{file: f, pkg: pkg, imports: g.importTable(f.Ast)}
			}
		}
	}
	return nil
}

// typeOf resolves an expression's concrete type syntactically; the zero
// TypeRef means unknown.
func (g *Graph) typeOf(fc *fileCtx, e *env, x ast.Expr) TypeRef {
	switch v := x.(type) {
	case *ast.Ident:
		return e.vars[v.Name]
	case *ast.ParenExpr:
		return g.typeOf(fc, e, v.X)
	case *ast.StarExpr:
		return g.typeOf(fc, e, v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND || v.Op == token.MUL {
			return g.typeOf(fc, e, v.X)
		}
	case *ast.IndexExpr:
		return g.typeOf(fc, e, v.X)
	case *ast.CompositeLit:
		if v.Type != nil {
			return g.resolveTypeExpr(fc, v.Type)
		}
	case *ast.TypeAssertExpr:
		if v.Type != nil {
			return g.resolveTypeExpr(fc, v.Type)
		}
	case *ast.SelectorExpr:
		base := g.typeOf(fc, e, v.X)
		if !base.Known() {
			return TypeRef{}
		}
		si := g.structs[base]
		if si == nil {
			return TypeRef{}
		}
		ft, ok := si.fields[v.Sel.Name]
		if !ok {
			return TypeRef{}
		}
		return g.resolveTypeExpr(si.file, ft)
	case *ast.CallExpr:
		callee, resolved := g.resolveCall(fc, e, v)
		if !resolved {
			return TypeRef{}
		}
		fi := g.Funcs[callee]
		if fi == nil || fi.Decl.Type.Results == nil || len(fi.Decl.Type.Results.List) == 0 {
			return TypeRef{}
		}
		calleeCtx := g.fileCtxOf(callee)
		if calleeCtx == nil {
			return TypeRef{}
		}
		return g.resolveTypeExpr(calleeCtx, fi.Decl.Type.Results.List[0].Type)
	}
	return TypeRef{}
}

// resolveCall resolves a call expression to a declared function or
// method in the tree.
func (g *Graph) resolveCall(fc *fileCtx, e *env, call *ast.CallExpr) (FuncKey, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		key := FuncKey{Pkg: fc.pkg.Rel, Name: fun.Name}
		if _, ok := g.Funcs[key]; ok {
			// A local variable of the same name shadows the package
			// function; a typed local is visible in the environment.
			if _, shadowed := e.vars[fun.Name]; !shadowed {
				return key, true
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, isVar := e.vars[id.Name]; !isVar {
				if rel, ok := fc.imports[id.Name]; ok {
					key := FuncKey{Pkg: rel, Name: fun.Sel.Name}
					if _, ok := g.Funcs[key]; ok {
						return key, true
					}
					return FuncKey{}, false
				}
			}
		}
		if recv := g.typeOf(fc, e, fun.X); recv.Known() {
			key := FuncKey{Pkg: recv.Pkg, Recv: recv.Name, Name: fun.Sel.Name}
			if _, ok := g.Funcs[key]; ok {
				return key, true
			}
		}
	}
	return FuncKey{}, false
}

// chargeNames are the cost-accounting methods of obs.Tracer, obs.Span
// and obs.Budget: a call to any of them, however the receiver was
// reached, counts as charging the active budget.
var chargeNames = map[string]bool{
	"Charge":      true,
	"ChargeTicks": true,
	"ChargePages": true,
}

// walkFacts records call sites, lock ops, field accesses and charges,
// carrying the enclosing go statement (if any) so rules can tell
// goroutine-spawned execution from the main path.
func (g *Graph) walkFacts(fc *fileCtx, fi *FuncInfo, e *env, n ast.Node, goStmt ast.Node, deferred bool) {
	if n == nil {
		return
	}
	switch st := n.(type) {
	case *ast.GoStmt:
		g.walkFacts(fc, fi, e, st.Call, st, deferred)
		return
	case *ast.DeferStmt:
		g.walkFacts(fc, fi, e, st.Call, goStmt, true)
		return
	case *ast.CallExpr:
		g.recordCall(fc, fi, e, st, goStmt, deferred)
		// Children (args, nested calls, func literals) keep walking.
	case *ast.SelectorExpr:
		g.recordAccess(fc, fi, e, st, goStmt)
	}
	for _, child := range childNodes(n) {
		g.walkFacts(fc, fi, e, child, goStmt, deferred)
	}
}

// childNodes lists a node's direct children (one ast.Inspect level).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

func (g *Graph) recordCall(fc *fileCtx, fi *FuncInfo, e *env, call *ast.CallExpr, goStmt ast.Node, deferred bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if chargeNames[sel.Sel.Name] {
			fi.Charges = append(fi.Charges, call.Pos())
		}
		// Lock operation: <base>.<field>.Lock() with a resolvable base.
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
			if inner, ok := sel.X.(*ast.SelectorExpr); ok {
				if base := g.typeOf(fc, e, inner.X); base.Known() {
					fi.Locks = append(fi.Locks, LockOp{
						Lock: LockKey{Type: base, Field: inner.Sel.Name},
						Op:   sel.Sel.Name,
						Go:   goStmt,
						Pos:  call.Pos(),
					})
				}
			}
		}
	}
	callee, resolved := g.resolveCall(fc, e, call)
	cs := &CallSite{
		Caller:   fi.Key,
		Call:     call,
		Callee:   callee,
		Resolved: resolved,
		Go:       goStmt != nil,
		Deferred: deferred,
	}
	fi.Calls = append(fi.Calls, cs)
	g.sites[call] = cs
}

func (g *Graph) recordAccess(fc *fileCtx, fi *FuncInfo, e *env, sel *ast.SelectorExpr, goStmt ast.Node) {
	base := g.typeOf(fc, e, sel.X)
	if !base.Known() {
		return
	}
	si := g.structs[base]
	if si == nil {
		return
	}
	if _, ok := si.fields[sel.Sel.Name]; !ok {
		return
	}
	fi.Accesses = append(fi.Accesses, FieldAccess{
		Type:  base,
		Field: sel.Sel.Name,
		Pos:   sel.Sel.Pos(),
		Go:    goStmt,
		Fresh: e.fresh[rootIdent(sel.X)],
	})
}

// rootIdent returns the identifier at the base of a selector/index
// chain, or "" when the chain roots elsewhere.
func rootIdent(x ast.Expr) string {
	for {
		switch v := x.(type) {
		case *ast.Ident:
			return v.Name
		case *ast.SelectorExpr:
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.ParenExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		case *ast.UnaryExpr:
			x = v.X
		default:
			return ""
		}
	}
}
