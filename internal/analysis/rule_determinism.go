package analysis

import (
	"go/ast"
)

// Determinism (R3) protects the virtual-clock discipline of PR 1: the
// engine packages charge cost in deterministic ticks, so their
// snapshots, goldens and experiment tables are bit-identical across
// machines. Wall-clock reads (time.Now, time.Since) and math/rand in
// those packages would silently break that; wall time belongs to
// cmd/statdb (the serve loop) and the obs sampler's caller, which
// passes elapsed milliseconds in.
type Determinism struct{}

// deterministicDirs are the engine packages whose outputs must be a
// pure function of inputs and configuration.
var deterministicDirs = []string{
	"internal/exec",
	"internal/summary",
	"internal/medwin",
	"internal/incr",
	"internal/stats",
	"internal/colstore",
	"internal/query",
	"internal/relalg",
	"internal/load",
}

// deterministicExemptFiles are the sanctioned wall-clock confinement
// points inside deterministic packages: internal/load's Clock shim is
// the load driver's only wall reader (a nil Clock is the deterministic
// configuration), so the rest of the package stays under the rule
// while the shim itself may read time.
var deterministicExemptFiles = map[string]bool{
	"internal/load/clock.go": true,
}

// ID implements Rule.
func (Determinism) ID() string { return "determinism" }

// Doc implements Rule.
func (Determinism) Doc() string {
	return "no time.Now/time.Since/math/rand in the deterministic engine packages (PR 1 contract)"
}

// Check implements Rule.
func (Determinism) Check(t *Tree, rep *Reporter) {
	for _, pkg := range t.Pkgs {
		deterministic := false
		for _, dir := range deterministicDirs {
			if underDir(pkg.Rel, dir) {
				deterministic = true
				break
			}
		}
		if !deterministic {
			continue
		}
		for _, f := range pkg.Files {
			if deterministicExemptFiles[f.Rel] {
				continue
			}
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				if imp := importsPath(f.Ast, path); imp != nil {
					rep.Reportf("determinism", imp.Pos(),
						"import of %s in deterministic engine package %s", path, pkg.Rel)
				}
			}
			if importsPath(f.Ast, "time") == nil {
				continue
			}
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != "time" {
					return true
				}
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					rep.Reportf("determinism", sel.Pos(),
						"time.%s in deterministic engine package %s; cost is virtual ticks, never wall time", sel.Sel.Name, pkg.Rel)
				}
				return true
			})
		}
	}
}
