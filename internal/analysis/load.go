package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is one parsed non-test source file.
type File struct {
	Rel string // root-relative path, forward slashes
	Ast *ast.File
}

// Package groups the files of one directory.
type Package struct {
	Rel   string // root-relative directory, forward slashes ("." for root)
	Files []*File
}

// Tree is a parsed source tree rooted at a module (or fixture) root.
// Rules see the tree exactly as the build does, minus _test.go files:
// testdata, vendor, hidden and underscore-prefixed directories are
// skipped.
type Tree struct {
	Root string
	Fset *token.FileSet
	Pkgs []*Package
}

// relPath converts an absolute file name from the FileSet back to the
// root-relative, slash-separated form findings use.
func (t *Tree) relPath(name string) string {
	if rel, err := filepath.Rel(t.Root, name); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// NumFiles returns the number of parsed files.
func (t *Tree) NumFiles() int {
	n := 0
	for _, p := range t.Pkgs {
		n += len(p.Files)
	}
	return n
}

// Load parses the tree under root restricted to patterns. Each pattern
// is a root-relative directory; a trailing "/..." (or the bare "./...")
// selects the whole subtree. No patterns means "./...".
func Load(root string, patterns ...string) (*Tree, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{} // root-relative dir -> recursive?
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		key := pat
		if recursive {
			key += "/..."
		}
		dirs[key] = recursive
	}

	t := &Tree{Root: absRoot, Fset: token.NewFileSet()}

	// Phase 1 (serial): walk the directory tree and collect the .go
	// files of every package. Pure directory listing — cheap.
	byDir := map[string][]string{}
	for key, recursive := range dirs {
		dir := strings.TrimSuffix(key, "/...")
		start := filepath.Join(absRoot, filepath.FromSlash(dir))
		info, err := os.Stat(start)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", dir, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("analysis: %s is not a directory", dir)
		}
		if err := discoverDir(t, byDir, start, recursive); err != nil {
			return nil, err
		}
	}

	// Phase 2 (parallel): parse one goroutine per package. A
	// token.FileSet is safe for concurrent ParseFile, and packages are
	// assembled into pre-sorted slots, so the resulting tree — and
	// every finding order derived from it — is identical to a serial
	// load. The first error in package order wins, deterministically.
	rels := make([]string, 0, len(byDir))
	for rel := range byDir {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	pkgs := make([]*Package, len(rels))
	errs := make([]error, len(rels))
	var wg sync.WaitGroup
	for i, rel := range rels {
		wg.Add(1)
		go func(i int, rel string) {
			defer wg.Done()
			paths := byDir[rel]
			sort.Strings(paths)
			pkg := &Package{Rel: rel}
			for _, path := range paths {
				f, err := parser.ParseFile(t.Fset, path, nil, parser.ParseComments)
				if err != nil {
					errs[i] = fmt.Errorf("analysis: %w", err)
					return
				}
				pkg.Files = append(pkg.Files, &File{Rel: t.relPath(path), Ast: f})
			}
			pkgs[i] = pkg
		}(i, rel)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	t.Pkgs = pkgs
	return t, nil
}

// skipDir reports whether a directory is outside the checked tree,
// mirroring the go tool's package-pattern conventions.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// discoverDir records the non-test .go files of dir (and, recursively,
// its subtrees) without parsing anything.
func discoverDir(t *Tree, byDir map[string][]string, dir string, recursive bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			if recursive && !skipDir(name) {
				if err := discoverDir(t, byDir, filepath.Join(dir, name), true); err != nil {
					return err
				}
			}
			continue
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		relDir := t.relPath(dir)
		byDir[relDir] = append(byDir[relDir], filepath.Join(dir, name))
	}
	return nil
}

// underDir reports whether rel (a package directory) is dir or below it.
func underDir(rel, dir string) bool {
	return rel == dir || strings.HasPrefix(rel, dir+"/")
}

// importsPath returns the ImportSpec of f importing path, or nil.
func importsPath(f *ast.File, path string) *ast.ImportSpec {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"`+path+`"` {
			return imp
		}
	}
	return nil
}
