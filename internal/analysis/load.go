package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed non-test source file.
type File struct {
	Rel string // root-relative path, forward slashes
	Ast *ast.File
}

// Package groups the files of one directory.
type Package struct {
	Rel   string // root-relative directory, forward slashes ("." for root)
	Files []*File
}

// Tree is a parsed source tree rooted at a module (or fixture) root.
// Rules see the tree exactly as the build does, minus _test.go files:
// testdata, vendor, hidden and underscore-prefixed directories are
// skipped.
type Tree struct {
	Root string
	Fset *token.FileSet
	Pkgs []*Package
}

// relPath converts an absolute file name from the FileSet back to the
// root-relative, slash-separated form findings use.
func (t *Tree) relPath(name string) string {
	if rel, err := filepath.Rel(t.Root, name); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// NumFiles returns the number of parsed files.
func (t *Tree) NumFiles() int {
	n := 0
	for _, p := range t.Pkgs {
		n += len(p.Files)
	}
	return n
}

// Load parses the tree under root restricted to patterns. Each pattern
// is a root-relative directory; a trailing "/..." (or the bare "./...")
// selects the whole subtree. No patterns means "./...".
func Load(root string, patterns ...string) (*Tree, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{} // root-relative dir -> recursive?
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		key := pat
		if recursive {
			key += "/..."
		}
		dirs[key] = recursive
	}

	t := &Tree{Root: absRoot, Fset: token.NewFileSet()}
	byDir := map[string]*Package{}
	for key, recursive := range dirs {
		dir := strings.TrimSuffix(key, "/...")
		start := filepath.Join(absRoot, filepath.FromSlash(dir))
		info, err := os.Stat(start)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", dir, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("analysis: %s is not a directory", dir)
		}
		if err := loadDir(t, byDir, start, recursive); err != nil {
			return nil, err
		}
	}
	for _, p := range byDir {
		sort.Slice(p.Files, func(i, j int) bool { return p.Files[i].Rel < p.Files[j].Rel })
		t.Pkgs = append(t.Pkgs, p)
	}
	sort.Slice(t.Pkgs, func(i, j int) bool { return t.Pkgs[i].Rel < t.Pkgs[j].Rel })
	return t, nil
}

// skipDir reports whether a directory is outside the checked tree,
// mirroring the go tool's package-pattern conventions.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func loadDir(t *Tree, byDir map[string]*Package, dir string, recursive bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			if recursive && !skipDir(name) {
				if err := loadDir(t, byDir, filepath.Join(dir, name), true); err != nil {
					return err
				}
			}
			continue
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(t.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		relDir := t.relPath(dir)
		pkg := byDir[relDir]
		if pkg == nil {
			pkg = &Package{Rel: relDir}
			byDir[relDir] = pkg
		}
		pkg.Files = append(pkg.Files, &File{Rel: t.relPath(path), Ast: f})
	}
	return nil
}

// underDir reports whether rel (a package directory) is dir or below it.
func underDir(rel, dir string) bool {
	return rel == dir || strings.HasPrefix(rel, dir+"/")
}

// importsPath returns the ImportSpec of f importing path, or nil.
func importsPath(f *ast.File, path string) *ast.ImportSpec {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"`+path+`"` {
			return imp
		}
	}
	return nil
}
