package analysis

// Rule is one machine-checked contract. Check walks the tree and
// reports violations through rep; it must be deterministic (findings
// are sorted afterwards, but messages and positions must not depend on
// map order or environment).
type Rule interface {
	// ID is the short kebab-case identifier used in findings and
	// //lint:allow directives.
	ID() string
	// Doc is a one-line statement of the contract the rule encodes.
	Doc() string
	Check(t *Tree, rep *Reporter)
}

// DefaultRules returns the repo's contract rules in a fixed order.
func DefaultRules() []Rule {
	return []Rule{
		ObsConfine{},
		NoPanic{},
		Determinism{},
		SentinelErrors{},
		GoroutineConfine{},
		MetricNames{},
		SpanBalance{},
		LockConfine{},
		ChargeTrack{},
		ErrorFlow{},
	}
}
