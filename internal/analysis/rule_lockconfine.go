package analysis

import (
	"go/ast"
	"regexp"
)

// LockConfine (R8) machine-enforces the concurrency contract the
// per-view confinement refactor (ROADMAP item 1) leans on: a struct
// field annotated
//
//	// guarded by <mu>
//
// in internal/core, internal/summary, internal/view or internal/shard
// may only be accessed by functions that hold that lock on every call
// path. The guard names a mutex field of the same struct (`guarded by
// mu`) or of another struct in the package (`guarded by Store.mu`).
// The check is interprocedural: a helper that never locks is fine as
// long as every resolved caller holds the lock when calling it, and a
// `go`-spawned path never carries the spawner's critical section — the
// goroutine body must reacquire. Initialization of a value the
// function itself constructed (a local bound to a composite literal)
// is exempt: nothing else can see it yet.
type LockConfine struct{}

// lockConfineDirs are the engine packages whose guarded-field
// annotations the rule enforces.
var lockConfineDirs = []string{
	"internal/core",
	"internal/summary",
	"internal/view",
	"internal/shard",
}

// guardedBy matches the annotation and captures the lock spec:
// "mu", "scanMu" or "Type.mu". Trailing prose after the lock name is
// allowed ("// guarded by mu (leaf lock)").
var guardedBy = regexp.MustCompile(`(?i)guarded by\s+([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)`)

// ID implements Rule.
func (LockConfine) ID() string { return "lock-confinement" }

// Doc implements Rule.
func (LockConfine) Doc() string {
	return "fields annotated '// guarded by <mu>' in core/summary/view/shard are only touched with the lock held on every call path (PR 10 contract)"
}

// Check implements Rule.
func (LockConfine) Check(t *Tree, rep *Reporter) {
	g := t.Graph()
	guarded := collectGuarded(t)
	if len(guarded) == 0 {
		return
	}
	holdCache := map[LockKey]map[FuncKey]bool{}
	holdsFor := func(l LockKey) map[FuncKey]bool {
		h, ok := holdCache[l]
		if !ok {
			h = g.Holds(l)
			holdCache[l] = h
		}
		return h
	}
	type dedupKey struct {
		fn    FuncKey
		field string
		typ   TypeRef
		goSig bool
	}
	seen := map[dedupKey]bool{}
	for _, key := range g.SortedFuncs() {
		fi := g.Funcs[key]
		for _, a := range fi.Accesses {
			lock, ok := guarded[a.Type][a.Field]
			if !ok || a.Fresh {
				continue
			}
			if a.Go != nil {
				if acquiresLockInGo(fi, lock, a.Go) {
					continue
				}
				dk := dedupKey{key, a.Field, a.Type, true}
				if seen[dk] {
					continue
				}
				seen[dk] = true
				rep.Reportf("lock-confinement", a.Pos,
					"%s.%s is guarded by %s but a goroutine spawned in %s touches it without reacquiring the lock",
					a.Type, a.Field, lock, key)
				continue
			}
			if holdsFor(lock)[key] {
				continue
			}
			dk := dedupKey{key, a.Field, a.Type, false}
			if seen[dk] {
				continue
			}
			seen[dk] = true
			rep.Reportf("lock-confinement", a.Pos,
				"%s.%s is guarded by %s but %s can be reached without the lock held",
				a.Type, a.Field, lock, key)
		}
	}
}

// collectGuarded scans the annotated packages' struct declarations for
// `// guarded by <mu>` field comments (trailing or doc) and returns
// field -> lock per struct type.
func collectGuarded(t *Tree) map[TypeRef]map[string]LockKey {
	out := map[TypeRef]map[string]LockKey{}
	for _, pkg := range t.Pkgs {
		confined := false
		for _, dir := range lockConfineDirs {
			if underDir(pkg.Rel, dir) {
				confined = true
				break
			}
		}
		if !confined {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Ast.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					ref := TypeRef{Pkg: pkg.Rel, Name: ts.Name.Name}
					for _, fld := range st.Fields.List {
						spec := guardSpec(fld)
						if spec == "" {
							continue
						}
						lock := parseLockSpec(ref, spec)
						for _, name := range fld.Names {
							if out[ref] == nil {
								out[ref] = map[string]LockKey{}
							}
							out[ref][name.Name] = lock
						}
					}
				}
			}
		}
	}
	return out
}

// guardSpec extracts the lock spec from a field's trailing or doc
// comment, or "" when the field carries no annotation.
func guardSpec(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Comment, fld.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedBy.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// parseLockSpec resolves "mu" to a field of the enclosing struct and
// "Type.mu" to a field of another struct in the same package.
func parseLockSpec(enclosing TypeRef, spec string) LockKey {
	for i := 0; i < len(spec); i++ {
		if spec[i] == '.' {
			return LockKey{
				Type:  TypeRef{Pkg: enclosing.Pkg, Name: spec[:i]},
				Field: spec[i+1:],
			}
		}
	}
	return LockKey{Type: enclosing, Field: spec}
}
