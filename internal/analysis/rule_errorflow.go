package analysis

import (
	"go/ast"
)

// ErrorFlow (R10) closes the gap sentinel-errors (R4) leaves open:
// matching ErrCorrupt with errors.Is is useless if a helper three
// calls up silently dropped the error. In library code (internal/),
// an error result must flow: returned, wrapped, passed on, or
// explicitly discarded under a reasoned //lint:allow. The rule is
// interprocedural through the call graph — a callee's signature is
// resolved across files and packages, so `rows, _ := decode(...)`
// is flagged wherever decode's last result is an error, and a bare
// `flush()` statement whose resolved callee returns an error is a
// dropped error even though no variable ever existed.
type ErrorFlow struct{}

// ID implements Rule.
func (ErrorFlow) ID() string { return "error-flow" }

// Doc implements Rule.
func (ErrorFlow) Doc() string {
	return "error results in internal/ are returned, wrapped or explicitly allowed — never silently dropped (PR 10 contract)"
}

// Check implements Rule.
func (ErrorFlow) Check(t *Tree, rep *Reporter) {
	g := t.Graph()
	for _, key := range g.SortedFuncs() {
		if !underDir(key.Pkg, "internal") {
			continue
		}
		fi := g.Funcs[key]
		if fi.Decl.Body == nil {
			continue
		}
		checkErrorFlow(g, fi, rep)
	}
}

// errResultIndexes returns the positions of `error`-typed results in a
// resolved callee's signature (syntactic: the predeclared identifier).
func errResultIndexes(fi *FuncInfo) []int {
	if fi == nil || fi.Decl.Type.Results == nil {
		return nil
	}
	var out []int
	idx := 0
	for _, r := range fi.Decl.Type.Results.List {
		n := len(r.Names)
		if n == 0 {
			n = 1
		}
		isErr := false
		if id, ok := r.Type.(*ast.Ident); ok && id.Name == "error" {
			isErr = true
		}
		for i := 0; i < n; i++ {
			if isErr {
				out = append(out, idx)
			}
			idx++
		}
	}
	return out
}

func checkErrorFlow(g *Graph, fi *FuncInfo, rep *Reporter) {
	body := fi.Decl.Body
	// assigned error variables that must be mentioned again:
	// name -> assignment position.
	type pending struct {
		pos    ast.Node
		callee string
	}
	assigned := map[*ast.Ident]pending{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			site := g.SiteFor(call)
			if site == nil || !site.Resolved {
				return true
			}
			if len(errResultIndexes(g.Funcs[site.Callee])) > 0 {
				rep.Reportf("error-flow", call.Pos(),
					"error result of %s dropped; handle it, return it, or annotate a //lint:allow", site.Callee)
			}
		case *ast.GoStmt:
			// A spawned call's error result has nowhere to flow by
			// construction; the audited fan-out surfaces collect errors
			// through channels, which this rule cannot see. Skip.
			return false
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			site := g.SiteFor(call)
			if site == nil || !site.Resolved {
				return true
			}
			errIdx := errResultIndexes(g.Funcs[site.Callee])
			for _, i := range errIdx {
				if i >= len(st.Lhs) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					rep.Reportf("error-flow", id.Pos(),
						"error result of %s discarded as _; handle it, return it, or annotate a //lint:allow", site.Callee)
					continue
				}
				assigned[id] = pending{pos: id, callee: site.Callee.String()}
			}
		}
		return true
	})

	// Second pass: an assigned error variable must be mentioned again
	// somewhere else in the function — returned, wrapped, checked,
	// reassigned. A variable never seen again was swallowed.
	for id, p := range assigned {
		mentioned := false
		ast.Inspect(body, func(n ast.Node) bool {
			other, ok := n.(*ast.Ident)
			if !ok || other == id || other.Name != id.Name {
				return !mentioned
			}
			mentioned = true
			return false
		})
		if !mentioned {
			rep.Reportf("error-flow", id.Pos(),
				"error from %s assigned to %s and never checked, returned or wrapped", p.callee, id.Name)
		}
	}
}
