// Package analysis is statdb's built-in static checker: a small,
// dependency-free framework (stdlib go/parser, go/ast and go/token
// only) that parses the module's non-test sources and enforces the
// engine's cross-package contracts at build time.
//
// The paper's framework (Section 5) argues that the Management Database
// must guarantee consistency rules mechanically rather than trusting
// analysts to follow convention; compiled incremental-view systems
// (DBToaster, F-IVM) likewise obtain their guarantees from compile-time
// analysis of the delta programs. This package applies the same idea to
// the reproduction itself: the invariants PRs 1-4 established — cost is
// virtual ticks, corruption is a sentinel error, fan-out lives in the
// audited worker pool, every metric flows through internal/obs — are
// encoded as AST rules so a violation fails `make lint` instead of
// surfacing in review.
//
// Findings print one per line as
//
//	path/file.go:line: [rule-id] message
//
// sorted by file, line, column and rule, so output is deterministic and
// golden-testable. A site that intentionally breaks a rule carries an
// inline suppression
//
//	//lint:allow <rule-id> <reason>
//
// on the offending line or the line above it. The reason is mandatory
// (a bare allow is itself a finding) and a directive that suppresses
// nothing is reported as unused, so the allowlist cannot rot.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// Finding is one rule violation (or directive problem) at a position.
type Finding struct {
	File string `json:"file"` // module-root-relative, forward slashes
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// String renders the canonical single-line form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// Reporter collects findings during a run. Rules report through it so
// position translation and ordering live in one place.
type Reporter struct {
	tree     *Tree
	findings []Finding
}

// Reportf records a finding for rule at pos.
func (r *Reporter) Reportf(rule string, pos token.Pos, format string, args ...any) {
	p := r.tree.Fset.Position(pos)
	r.findings = append(r.findings, Finding{
		File: r.tree.relPath(p.Filename),
		Line: p.Line,
		Col:  p.Column,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Run executes the rules over the tree, applies //lint:allow
// suppressions, and returns the surviving findings in deterministic
// order (file, line, column, rule, message). Rules run one goroutine
// each against their own Reporter; the merge is by rule order and the
// final sort is total, so the output is bit-identical to a serial run.
func Run(t *Tree, rules []Rule) []Finding {
	known := make(map[string]bool, len(rules))
	for _, r := range rules {
		known[r.ID()] = true
	}
	// Build the shared call graph up front so the goroutines below only
	// ever read it.
	t.Graph()
	reps := make([]*Reporter, len(rules))
	var wg sync.WaitGroup
	for i, r := range rules {
		reps[i] = &Reporter{tree: t}
		wg.Add(1)
		go func(rep *Reporter, r Rule) {
			defer wg.Done()
			r.Check(t, rep)
		}(reps[i], r)
	}
	wg.Wait()
	var raw []Finding
	for _, rep := range reps {
		raw = append(raw, rep.findings...)
	}

	directives, dirFindings := scanDirectives(t, known)
	kept := dirFindings
	for _, f := range raw {
		if suppress(directives, f) {
			continue
		}
		kept = append(kept, f)
	}
	for _, d := range directives {
		if !d.valid || d.used {
			continue
		}
		msg := fmt.Sprintf("unused //lint:allow %s: no %s finding on this or the next line", d.rule, d.rule)
		// When a different rule fired exactly where this directive
		// points, the author almost certainly wrote the wrong id — say
		// which one the site actually needs.
		if others := rulesAt(raw, d); len(others) > 0 {
			msg += fmt.Sprintf(" (the finding here is %s — did you mean //lint:allow %s?)",
				strings.Join(others, ", "), others[0])
		}
		kept = append(kept, Finding{
			File: d.file, Line: d.line, Col: d.col, Rule: directiveRule,
			Msg: msg,
		})
	}
	sortFindings(kept)
	return kept
}

// rulesAt returns the distinct rule ids of raw findings the directive's
// two-line window covers but does not name, sorted.
func rulesAt(raw []Finding, d *directive) []string {
	set := map[string]bool{}
	for _, f := range raw {
		if f.File == d.file && (f.Line == d.line || f.Line == d.line+1) && f.Rule != d.rule {
			set[f.Rule] = true
		}
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}
