package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// MetricNames (R6) guards the exposition surface of PR 4: every
// instrument registration (Registry.Counter/Gauge/Histogram) passes
// either a canonical string literal or a named constant (the obs.M*
// names), and the canonical form is dotted lower-case —
// [a-z0-9_] segments joined by single dots. Snapshot.WritePrometheus
// maps '.' to '_', so a name of this shape can never emit an invalid
// Prometheus metric name; a computed or mixed-case name could.
type MetricNames struct{}

// metricNameForm is the canonical dotted lower-case shape.
var metricNameForm = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)*$`)

// registrationMethods are the obs.Registry methods that take a metric
// name as their first argument.
var registrationMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// ID implements Rule.
func (MetricNames) ID() string { return "metric-names" }

// Doc implements Rule.
func (MetricNames) Doc() string {
	return "instrument registrations use literal or obs.M* names of the form [a-z0-9_.]+ (PR 3/4 contract)"
}

// Check implements Rule.
func (MetricNames) Check(t *Tree, rep *Reporter) {
	for _, pkg := range t.Pkgs {
		for _, f := range pkg.Files {
			// The canonical name table itself: every string constant in
			// internal/obs/names.go must already be canonical, since the
			// call-site check trusts named constants.
			if f.Rel == "internal/obs/names.go" {
				checkNameTable(f, rep)
			}
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !registrationMethods[sel.Sel.Name] {
					return true
				}
				switch arg := call.Args[0].(type) {
				case *ast.BasicLit:
					if arg.Kind != token.STRING {
						return true
					}
					name, err := strconv.Unquote(arg.Value)
					if err != nil || !metricNameForm.MatchString(name) {
						rep.Reportf("metric-names", arg.Pos(),
							"metric name %s is not canonical [a-z0-9_.]+; it would break Prometheus exposition", arg.Value)
					}
				case *ast.Ident, *ast.SelectorExpr:
					// A named constant (obs.MExecChunks et al.) — the name
					// table check above keeps those canonical.
				default:
					rep.Reportf("metric-names", call.Args[0].Pos(),
						"%s registration with a computed name; pass a string literal or an obs.M* constant", sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// checkNameTable validates every string constant in the canonical name
// file.
func checkNameTable(f *File, rep *Reporter) {
	for _, decl := range f.Ast.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				lit, ok := v.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil || !metricNameForm.MatchString(name) {
					rep.Reportf("metric-names", lit.Pos(),
						"canonical name constant %s is not [a-z0-9_.]+", lit.Value)
				}
			}
		}
	}
}
