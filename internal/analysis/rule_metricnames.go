package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// MetricNames (R6) guards the exposition surface of PR 4: every
// instrument registration (Registry.Counter/Gauge/Histogram) passes
// either a canonical string literal or a named constant (the obs.M*
// names), and the canonical form is dotted lower-case —
// [a-z0-9_] segments joined by single dots. Snapshot.WritePrometheus
// maps '.' to '_', so a name of this shape can never emit an invalid
// Prometheus metric name; a computed or mixed-case name could.
type MetricNames struct{}

// metricNameForm is the canonical dotted lower-case shape.
var metricNameForm = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)*$`)

// registrationMethods are the obs.Registry methods that take a metric
// name as their first argument.
var registrationMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// ID implements Rule.
func (MetricNames) ID() string { return "metric-names" }

// Doc implements Rule.
func (MetricNames) Doc() string {
	return "instrument registrations use literal or obs.M* names of the form [a-z0-9_.]+ (PR 3/4 contract)"
}

// Check implements Rule.
func (MetricNames) Check(t *Tree, rep *Reporter) {
	for _, pkg := range t.Pkgs {
		for _, f := range pkg.Files {
			// The canonical name table itself: every string constant in
			// internal/obs/names.go must already be canonical, since the
			// call-site check trusts named constants.
			if f.Rel == "internal/obs/names.go" {
				checkNameTable(f, rep)
			}
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !registrationMethods[sel.Sel.Name] {
					return true
				}
				switch arg := call.Args[0].(type) {
				case *ast.BasicLit:
					if arg.Kind != token.STRING {
						return true
					}
					name, err := strconv.Unquote(arg.Value)
					if err != nil || !metricNameForm.MatchString(name) {
						rep.Reportf("metric-names", arg.Pos(),
							"metric name %s is not canonical [a-z0-9_.]+; it would break Prometheus exposition", arg.Value)
					}
				case *ast.Ident, *ast.SelectorExpr:
					// A named constant (obs.MExecChunks et al.) — the name
					// table check above keeps those canonical.
				case *ast.CallExpr:
					// obs.LabeledName(family, label) sanitizes the label at
					// runtime into the canonical shape, so a labeled
					// registration is safe iff the family argument is itself
					// canonical (literal or named constant).
					if isLabeledNameCall(arg) {
						checkFamilyArg(arg.Args[0], rep)
						return true
					}
					rep.Reportf("metric-names", call.Args[0].Pos(),
						"%s registration with a computed name; pass a string literal, an obs.M* constant, or obs.LabeledName(family, label)", sel.Sel.Name)
				default:
					rep.Reportf("metric-names", call.Args[0].Pos(),
						"%s registration with a computed name; pass a string literal, an obs.M* constant, or obs.LabeledName(family, label)", sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// isLabeledNameCall reports whether call is obs.LabeledName(...) (or
// the package-local LabeledName(...) inside internal/obs) with the
// two-argument shape.
func isLabeledNameCall(call *ast.CallExpr) bool {
	if len(call.Args) != 2 {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "LabeledName"
	case *ast.Ident:
		return fun.Name == "LabeledName"
	}
	return false
}

// checkFamilyArg validates LabeledName's family argument: a canonical
// string literal or a named constant; anything computed is flagged.
func checkFamilyArg(arg ast.Expr, rep *Reporter) {
	switch a := arg.(type) {
	case *ast.BasicLit:
		if a.Kind != token.STRING {
			return
		}
		name, err := strconv.Unquote(a.Value)
		if err != nil || !metricNameForm.MatchString(name) {
			rep.Reportf("metric-names", a.Pos(),
				"metric name %s is not canonical [a-z0-9_.]+; it would break Prometheus exposition", a.Value)
		}
	case *ast.Ident, *ast.SelectorExpr:
		// Named constant — kept canonical by the name-table check.
	default:
		rep.Reportf("metric-names", arg.Pos(),
			"LabeledName family must be a string literal or an obs.M* constant")
	}
}

// checkNameTable validates every string constant in the canonical name
// file.
func checkNameTable(f *File, rep *Reporter) {
	for _, decl := range f.Ast.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				lit, ok := v.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil || !metricNameForm.MatchString(name) {
					rep.Reportf("metric-names", lit.Pos(),
						"canonical name constant %s is not [a-z0-9_.]+", lit.Value)
				}
			}
		}
	}
}
