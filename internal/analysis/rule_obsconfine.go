package analysis

// ObsConfine (R1) is the AST-accurate successor of the retired
// scripts/vet_obs.sh grep: all metric primitives live in internal/obs.
// No other package may import sync/atomic or expvar to roll its own
// counters; instrumentation goes through obs.Registry so every number
// shows up in `statdb stats` and DBMS.Metrics(). Likewise net/http is
// confined to the export layer (internal/obs serves the exposition
// endpoint) and cmd/statdb (the serve subcommand): engine, storage and
// query packages stay transport-free.
type ObsConfine struct{}

// ID implements Rule.
func (ObsConfine) ID() string { return "obs-confine" }

// Doc implements Rule.
func (ObsConfine) Doc() string {
	return "sync/atomic and expvar only in internal/obs; net/http only in internal/obs and cmd/statdb (PR 3/4 contract)"
}

// atomicFileAllow carries over the grep script's allowlist: files that
// may import sync/atomic for non-metric uses, with the reason recorded
// so the exemption stays reviewable.
var atomicFileAllow = map[string]string{
	// The worker pool uses atomic.Int64 as its chunk-dispatch cursor,
	// which is work distribution, not a metric.
	"internal/exec/exec.go": "chunk-dispatch cursor",
}

// Check implements Rule.
func (ObsConfine) Check(t *Tree, rep *Reporter) {
	for _, pkg := range t.Pkgs {
		inObs := underDir(pkg.Rel, "internal/obs")
		httpOK := inObs || underDir(pkg.Rel, "cmd/statdb")
		for _, f := range pkg.Files {
			if !inObs {
				for _, path := range []string{"sync/atomic", "expvar"} {
					imp := importsPath(f.Ast, path)
					if imp == nil {
						continue
					}
					if _, ok := atomicFileAllow[f.Rel]; ok && path == "sync/atomic" {
						continue
					}
					rep.Reportf("obs-confine", imp.Pos(),
						"import of %s outside internal/obs; instrument through obs.Registry instead", path)
				}
			}
			if !httpOK {
				if imp := importsPath(f.Ast, "net/http"); imp != nil {
					rep.Reportf("obs-confine", imp.Pos(),
						"import of net/http outside internal/obs and cmd/statdb; the HTTP surface is the export layer only")
				}
			}
		}
	}
}
