package analysis

import (
	"go/ast"
)

// GoroutineConfine (R5) keeps all fan-out inside the race-audited
// surfaces: internal/exec owns the worker pool (`make race` hammers
// it), internal/obs's handles are lock-free by design, internal/shard
// scatters one goroutine per shard (its race suite covers concurrent
// scatter-gather under fault injection), internal/load spawns one
// goroutine per simulated session (its conservation and digest tests
// run the fan-out under -race), cmd/statdb runs the serve loop's
// ticker and shutdown goroutines, and internal/analysis parses fixture
// packages in parallel (one goroutine per package over a thread-safe
// FileSet, joined before any rule runs). A `go` statement anywhere
// else creates concurrency the determinism contract and the race suite
// never see — such work must be expressed as exec.Pool chunks instead.
type GoroutineConfine struct{}

// goroutineDirs are the packages allowed to spawn goroutines.
var goroutineDirs = []string{
	"internal/exec",
	"internal/obs",
	"internal/shard",
	"internal/load",
	"internal/analysis",
	"cmd/statdb",
}

// ID implements Rule.
func (GoroutineConfine) ID() string { return "goroutine-confine" }

// Doc implements Rule.
func (GoroutineConfine) Doc() string {
	return "go statements only in internal/exec, internal/obs, internal/shard, internal/load, internal/analysis and cmd/statdb; fan out via exec.Pool (PR 1 contract)"
}

// Check implements Rule.
func (GoroutineConfine) Check(t *Tree, rep *Reporter) {
	for _, pkg := range t.Pkgs {
		allowed := false
		for _, dir := range goroutineDirs {
			if underDir(pkg.Rel, dir) {
				allowed = true
				break
			}
		}
		if allowed {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					rep.Reportf("goroutine-confine", g.Pos(),
						"go statement outside the audited concurrency surfaces; run the work as exec.Pool chunks")
				}
				return true
			})
		}
	}
}
