package load

import "time"

// Spawn fans sessions out on goroutines — allowed in internal/load,
// whose race suite audits the fan-out — but reads the wall clock
// directly instead of through the Clock shim in clock.go. The
// determinism rule must flag both reads and stay quiet about the go
// statement.
func Spawn(fns []func()) time.Duration {
	start := time.Now()
	done := make(chan struct{}, len(fns))
	for _, fn := range fns {
		go func(fn func()) {
			fn()
			done <- struct{}{}
		}(fn)
	}
	for range fns {
		<-done
	}
	return time.Since(start)
}
