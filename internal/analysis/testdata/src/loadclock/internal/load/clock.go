// Package load is the determinism-confinement fixture twin of the real
// load driver: clock.go is the sanctioned wall-clock shim, so nothing
// in this file may be flagged even though the package is deterministic.
package load

import "time"

// Clock mirrors the real shim: the package's only wall reader.
type Clock struct{ start time.Time }

// New starts a clock. Exempt: this file is the confinement point.
func New() *Clock { return &Clock{start: time.Now()} }

// NowUs reads elapsed wall microseconds. Exempt likewise.
func (c *Clock) NowUs() int64 { return time.Since(c.start).Microseconds() }
