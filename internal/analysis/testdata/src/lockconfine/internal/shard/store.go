// Package shard is a lock-confinement fixture: struct fields annotated
// `// guarded by <mu>` may only be touched with that lock held on every
// call path, and a go-spawned body must reacquire for itself.
package shard

import "sync"

// Store mirrors the real shard.Store: a mutex and the state it guards.
type Store struct {
	mu     sync.Mutex
	health map[string]int // guarded by mu
	fails  int            // guarded by mu
	label  string         // immutable after construction; unconstrained
}

// NewStore initializes a fresh value; nothing else can see it yet, so
// the unguarded writes are exempt.
func NewStore(label string) *Store {
	s := &Store{health: map[string]int{}, label: label}
	s.health["seed"] = 1
	return s
}

// Mark locks before touching guarded state; no finding.
func (s *Store) Mark(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health[name]++
	s.bump()
}

// bump never locks, but its only caller holds mu — the interprocedural
// fixpoint proves the lock is held on every path in; no finding.
func (s *Store) bump() {
	s.fails++
}

// Peek reads guarded state with no lock anywhere on the path; finding.
func (s *Store) Peek(name string) int {
	return s.health[name]
}

// Refresh spawns a goroutine from inside a critical section: the
// spawner's lock does not extend into the spawned body, so the touch
// inside is a finding.
func (s *Store) Refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.fails = 0
	}()
}

// RefreshLocked reacquires inside the goroutine; no finding.
func (s *Store) RefreshLocked() {
	go func() {
		s.mu.Lock()
		s.fails = 0
		s.mu.Unlock()
	}()
}

// workerState mirrors shardState: its health fields are guarded by the
// owning Store's lock, named cross-struct.
type workerState struct {
	id    int
	fails int // guarded by Store.mu
}

// Note locks the owner, then marks the worker; no finding.
func (s *Store) Note(w *workerState) {
	s.mu.Lock()
	w.fails++
	s.mu.Unlock()
}

// Clear touches the worker without the owner's lock; finding.
func Clear(w *workerState) {
	w.fails = 0
}
