// Package summary is a goroutine-confine fixture: cache refills fan
// out on raw goroutines instead of exec.Pool chunks.
package summary

// Refill spawns outside the audited surfaces; the rule must flag it.
func Refill(fns []func()) {
	done := make(chan struct{})
	for _, fn := range fns {
		go func(fn func()) {
			fn()
			done <- struct{}{}
		}(fn)
	}
	for range fns {
		<-done
	}
}
