// Package stats is a determinism fixture: an engine package reading
// wall clocks and unseeded randomness.
package stats

import (
	"math/rand"
	"time"
)

// Jitter breaks the virtual-clock contract three ways: the math/rand
// import, time.Now and time.Since.
func Jitter() time.Duration {
	start := time.Now()
	_ = rand.Int()
	return time.Since(start)
}
