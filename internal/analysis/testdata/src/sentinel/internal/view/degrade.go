// Package view is a sentinel-errors fixture: it matches the storage
// sentinels and the typed budget abort without errors.Is / errors.As.
package view

import (
	"statdb/internal/obs"
	"statdb/internal/shard"
	"statdb/internal/storage"
)

// Degrade matches sentinels the fragile way; every branch is a finding.
func Degrade(err error) string {
	if err == storage.ErrCorrupt {
		return "corrupt"
	}
	if err == shard.ErrShardDown {
		return "down"
	}
	if storage.ErrTransient != err {
		switch err.(type) {
		case *obs.BudgetError:
			return "budget"
		}
	}
	if _, ok := err.(*obs.BudgetError); ok {
		return "budget"
	}
	return "ok"
}
