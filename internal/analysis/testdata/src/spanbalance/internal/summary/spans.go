// Package summary is a span-balance fixture: spans opened with Begin
// must be ended in the same function or escape to a new owner.
package summary

// Tracer and Span mimic the obs shapes the rule matches syntactically.
type Tracer struct{}

type Span struct{}

func (t *Tracer) Begin(name string) *Span { return &Span{} }
func (s *Span) End()                      {}
func (s *Span) SetAttr(k, v string)       {}

type hook struct {
	Parent *Span
}

// Leak opens a span and forgets it; the rule must flag the Begin.
func Leak(tr *Tracer) {
	sp := tr.Begin("scan")
	sp.SetAttr("rows", "8")
}

// Dropped discards the Begin result outright; always a finding.
func Dropped(tr *Tracer) {
	tr.Begin("scan")
}

// Blank binds the span to _, which can never be ended either.
func Blank(tr *Tracer) {
	_ = tr.Begin("scan")
}

// DeferClose is the canonical balanced form; no finding.
func DeferClose(tr *Tracer) {
	sp := tr.Begin("fold")
	defer sp.End()
}

// DirectClose ends explicitly mid-function; no finding.
func DirectClose(tr *Tracer) {
	sp := tr.Begin("fold")
	sp.SetAttr("engine", "serial")
	sp.End()
}

// ClosureClose ends inside a nested literal, the scatter idiom; no
// finding — the closure is part of the function body.
func ClosureClose(tr *Tracer) {
	sp := tr.Begin("shard")
	fn := func() { sp.End() }
	fn()
}

// Handoff escapes through a composite literal: the hook's consumer owns
// the close; no finding.
func Handoff(tr *Tracer) hook {
	sp := tr.Begin("range")
	return hook{Parent: sp}
}

// PassedAlong escapes as a call argument; no finding.
func PassedAlong(tr *Tracer, close func(*Span)) {
	sp := tr.Begin("op")
	close(sp)
}

// Reassigned rebinds an outer variable (the coordinator's fast-fail
// idiom) and still ends it; no finding.
func Reassigned(tr *Tracer, skipped bool) {
	var sp *Span
	if skipped {
		sp = tr.Begin("skip")
		sp.End()
	}
	_ = sp
}
