// Forwarding cases for the PR 10 interprocedural upgrade: handing a
// span to a resolved callee only balances if that callee closes it.
package summary

// finish closes the span it is handed; forwarding into it balances.
func finish(sp *Span) { sp.End() }

// relay hands the span one hop further; the chain still balances.
func relay(sp *Span) { finish(sp) }

// ignore touches the span but never ends it.
func ignore(sp *Span) { sp.SetAttr("k", "v") }

// ForwardClose hands the span to a callee that ends it; no finding.
func ForwardClose(tr *Tracer) {
	sp := tr.Begin("fold")
	finish(sp)
}

// ForwardChain balances through two hops; no finding.
func ForwardChain(tr *Tracer) {
	sp := tr.Begin("fold")
	relay(sp)
}

// ForwardLeak hands the span to a resolved callee that ignores it — a
// leak the intra-procedural rule could not see; finding at the Begin.
func ForwardLeak(tr *Tracer) {
	sp := tr.Begin("fold")
	ignore(sp)
}
