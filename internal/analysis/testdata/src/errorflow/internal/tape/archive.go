// Package tape is an error-flow fixture: error results in library code
// must be returned, handled, or explicitly discarded under an allow.
package tape

import "errors"

// ErrMissing reports an absent file.
var ErrMissing = errors.New("tape: missing file")

// Rows returns the row count of name.
func Rows(name string) (int, error) {
	if name == "" {
		return 0, ErrMissing
	}
	return 1, nil
}

// Flush writes buffered pages back.
func Flush() error { return nil }

// ListGood propagates the error; no finding.
func ListGood(names []string) (int, error) {
	total := 0
	for _, n := range names {
		r, err := Rows(n)
		if err != nil {
			return 0, err
		}
		total += r
	}
	return total, nil
}

// ListBad discards the error slot of a resolved callee; finding.
func ListBad(names []string) int {
	total := 0
	for _, n := range names {
		r, _ := Rows(n)
		total += r
	}
	return total
}

// Close drops Flush's error on the floor with a bare call; finding.
func Close() {
	Flush()
}

// CloseAllowed documents the drop; suppressed, no finding.
func CloseAllowed() {
	_ = Flush() //lint:allow error-flow shutdown path; nothing can handle it
}

// Swallowed assigns the error and never looks at it again; finding.
// (Parse-only fixture: the compiler would reject the unused variable.)
func Swallowed() int {
	err := Flush()
	return 1
}
