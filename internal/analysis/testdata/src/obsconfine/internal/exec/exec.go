// Package exec mirrors the real pool file: its sync/atomic import is
// covered by the ported vet_obs.sh allowlist (the chunk-dispatch
// cursor), so no finding is expected here.
package exec

import "sync/atomic"

// next is the dispatch cursor, work distribution rather than a metric.
var next atomic.Int64

// Next pops a chunk index.
func Next() int64 { return next.Add(1) - 1 }
