// Package query is an obs-confine fixture: the query layer grows its
// own HTTP surface instead of leaving transport to the export layer.
package query

import "net/http"

// Serve is the violation: net/http outside internal/obs and cmd/statdb.
func Serve(addr string) error {
	return http.ListenAndServe(addr, nil)
}
