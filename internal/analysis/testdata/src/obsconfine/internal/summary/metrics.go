// Package summary is an obs-confine fixture: it rolls its own counter
// primitives instead of registering through obs.Registry.
package summary

import (
	"expvar"
	"sync/atomic"
)

// Hits is a hand-rolled atomic counter the rule must flag.
var Hits atomic.Int64

// Published is a hand-rolled expvar the rule must flag.
var Published = expvar.NewInt("summary_hits")
