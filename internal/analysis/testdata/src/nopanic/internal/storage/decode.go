// Package storage is a no-panic fixture: a decode path that explodes
// on malformed input instead of returning an ErrCorrupt-style sentinel.
package storage

import "fmt"

// DecodeRow panics on short input; the rule must flag it.
func DecodeRow(b []byte) []byte {
	if len(b) < 4 {
		panic(fmt.Sprintf("storage: short row %d", len(b)))
	}
	return b[4:]
}

// MustDecodeRow is exempt by the Must* constructor idiom; no finding.
func MustDecodeRow(b []byte) []byte {
	if len(b) < 4 {
		panic("storage: short row")
	}
	return b[4:]
}
