// Package storage is the suppression fixture: well-formed, bare,
// stale and unknown-rule //lint:allow directives.
package storage

// boot panics behind a documented trailing suppression: no finding.
func boot(n int) {
	if n < 0 {
		panic("storage: negative boot size") //lint:allow no-panic constructor invariant: caller bug, not a data fault
	}
}

// above carries the suppression on the line above the panic: no
// finding either.
func above(n int) {
	if n < 0 {
		//lint:allow no-panic invariant documented in DESIGN.md
		panic("storage: negative size in above")
	}
}

// bare has an allow with no reason: the directive is a finding and the
// panic stays reported.
func bare(n int) {
	if n < 0 {
		panic("storage: negative size") //lint:allow no-panic
	}
}

// stale sits above code that no longer panics: an unused directive is
// reported so the allowlist cannot rot.
func stale(n int) int {
	//lint:allow no-panic decode guards this path
	return n + 1
}

// mystery names a rule that does not exist.
func mystery(n int) int {
	//lint:allow no-retries decode guards this path
	return n + 1
}

// use keeps the helpers referenced.
func use() {
	boot(1)
	above(1)
	bare(1)
	_ = stale(1)
	_ = mystery(1)
}
