// Package storage is a metric-names fixture: registrations with
// non-canonical and computed names.
package storage

// registry is the minimal shape of obs.Registry the rule keys on.
type registry struct{}

func (registry) Counter(name string) int                   { return len(name) }
func (registry) Gauge(name string) int                     { return len(name) }
func (registry) Histogram(name string, bounds []int64) int { return len(name) }

// LabeledName is the minimal shape of obs.LabeledName the rule keys on.
func LabeledName(family, label string) string { return family + "." + label }

// Wire registers one canonical and three broken instruments, plus
// labeled registrations through the sanctioned LabeledName shape.
func Wire(prefix string) {
	var reg registry
	reg.Counter("storage.pool.hits")         // canonical: no finding
	reg.Counter("Storage.Pool.Hits")         // mixed case
	reg.Gauge("storage..inflight")           // empty segment
	reg.Histogram(prefix+".pass_ticks", nil) // computed name
	label := prefix
	reg.Counter(LabeledName("storage.fault.torn_writes", label)) // sanctioned: no finding
	reg.Counter(LabeledName("Storage.Fault", label))             // bad family literal
	reg.Counter(LabeledName(prefix+".fault", label))             // computed family
}
