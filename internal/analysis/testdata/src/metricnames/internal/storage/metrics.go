// Package storage is a metric-names fixture: registrations with
// non-canonical and computed names.
package storage

// registry is the minimal shape of obs.Registry the rule keys on.
type registry struct{}

func (registry) Counter(name string) int                   { return len(name) }
func (registry) Gauge(name string) int                     { return len(name) }
func (registry) Histogram(name string, bounds []int64) int { return len(name) }

// Wire registers one canonical and three broken instruments.
func Wire(prefix string) {
	var reg registry
	reg.Counter("storage.pool.hits")         // canonical: no finding
	reg.Counter("Storage.Pool.Hits")         // mixed case
	reg.Gauge("storage..inflight")           // empty segment
	reg.Histogram(prefix+".pass_ticks", nil) // computed name
}
