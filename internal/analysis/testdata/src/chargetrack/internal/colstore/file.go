// Package colstore is the charge-tracking fixture's storage layer: its
// read APIs must be metered when reached from a query verb.
package colstore

// File is a columnar file image.
type File struct{}

// NumericColumn reads a whole column — a page-cost read the verb path
// must charge.
func (f *File) NumericColumn(col string) ([]float64, []bool, error) {
	return nil, nil, nil
}

// Rows is metadata from the cached header, not a read; unconstrained.
func (f *File) Rows() int { return 0 }
