// Package view is the charge-tracking fixture's read path: one charged
// read, one uncharged read on a verb path (the finding), and one
// uncharged read no verb reaches.
package view

import "statdb/internal/colstore"

// Tracer mimics obs.Tracer's charging surface.
type Tracer struct{}

// Charge accounts ticks to the innermost span and the budget.
func (t *Tracer) Charge(n int64) {}

// ChargePages accounts page reads to the budget.
func (t *Tracer) ChargePages(n int64) {}

// View reads columns through a store-backed file.
type View struct {
	file   *colstore.File
	tracer *Tracer
}

// WarmColumn charges the read's cost; no finding.
func (v *View) WarmColumn(attr string) ([]float64, []bool, error) {
	xs, valid, err := v.file.NumericColumn(attr)
	v.tracer.Charge(int64(len(xs)))
	return xs, valid, err
}

// ColdColumn reads without charging, and its only verb-side caller
// never charges either — the finding lands on the read below.
func (v *View) ColdColumn(attr string) ([]float64, []bool, error) {
	return v.file.NumericColumn(attr)
}

// Audit reads uncharged too, but no query verb reaches it, so the
// rule does not constrain it; no finding.
func Audit(v *View) ([]float64, error) {
	xs, _, err := v.file.NumericColumn("AGE")
	return xs, err
}
