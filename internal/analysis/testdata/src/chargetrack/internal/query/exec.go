// Package query is the charge-tracking fixture's verb layer: exec*
// functions are the roots every read path is audited from.
package query

import "statdb/internal/view"

// execHist is a query verb. The WarmColumn read is charged where it
// happens; the ColdColumn read is charged nowhere between here and the
// storage call, which is the finding (reported at the read site).
func execHist(v *view.View) error {
	if _, _, err := v.WarmColumn("SALARY"); err != nil {
		return err
	}
	_, _, err := v.ColdColumn("AGE")
	return err
}
