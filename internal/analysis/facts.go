package analysis

import (
	"go/ast"
)

// Facts are per-function summaries propagated over the call graph to a
// fixpoint. Three propagations back the contract rules:
//
//   - Holds(lock): the lock is held on every resolved call path into
//     the function (lock-confinement). Greatest fixpoint — start from
//     "held everywhere" and strip functions reachable without it; a
//     `go` edge never carries a lock.
//   - Charged(roots): every call path from a query-verb root into the
//     function passes a Charge/ChargeTicks/ChargePages site
//     (charge-tracking). Same shape, restricted to the verb-reachable
//     subgraph.
//   - SpanSlotOK: a span handed to this parameter slot is ended,
//     forwarded to someone who ends it, or escapes to a new owner
//     (span-balance). Least fixpoint over forwarding edges.

// acquiresLock reports whether fi locks l on its main (non-go) path.
func acquiresLock(fi *FuncInfo, l LockKey) bool {
	for _, op := range fi.Locks {
		if op.Lock == l && op.Go == nil && (op.Op == "Lock" || op.Op == "RLock") {
			return true
		}
	}
	return false
}

// acquiresLockInGo reports whether fi locks l inside the given go
// statement's subtree — the only way a goroutine-spawned body can hold
// a lock the spawner's critical section does not extend to.
func acquiresLockInGo(fi *FuncInfo, l LockKey, goStmt ast.Node) bool {
	for _, op := range fi.Locks {
		if op.Lock == l && op.Go == goStmt && (op.Op == "Lock" || op.Op == "RLock") {
			return true
		}
	}
	return false
}

// Holds computes, for every function, whether lock l is held on every
// resolved call path reaching it: the function acquires l itself, or
// it has at least one caller and every resolved call site reaching it
// is a non-go call from a function that holds l. Entry points that do
// not acquire are not holding, and that fact propagates down.
func (g *Graph) Holds(l LockKey) map[FuncKey]bool {
	holds := make(map[FuncKey]bool, len(g.Funcs))
	for k := range g.Funcs {
		holds[k] = true
	}
	for changed := true; changed; {
		changed = false
		for k, fi := range g.Funcs {
			if !holds[k] {
				continue
			}
			v := acquiresLock(fi, l)
			if !v {
				in := g.callers[k]
				if len(in) > 0 {
					v = true
					for _, cs := range in {
						if cs.Go || !holds[cs.Caller] {
							v = false
							break
						}
					}
				}
			}
			if !v {
				holds[k] = false
				changed = true
			}
		}
	}
	return holds
}

// Reachable returns every function reachable from the given roots over
// resolved edges (go and defer edges included: spawned and deferred
// work still runs on behalf of the root).
func (g *Graph) Reachable(roots []FuncKey) map[FuncKey]bool {
	seen := map[FuncKey]bool{}
	stack := append([]FuncKey{}, roots...)
	for _, r := range roots {
		if _, ok := g.Funcs[r]; ok {
			seen[r] = true
		}
	}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fi := g.Funcs[k]
		if fi == nil {
			continue
		}
		for _, cs := range fi.Calls {
			if cs.Resolved && !seen[cs.Callee] {
				seen[cs.Callee] = true
				stack = append(stack, cs.Callee)
			}
		}
	}
	return seen
}

// Charged computes, over the subgraph reachable from roots, whether
// every call path from a root into the function passes a charge site.
// A function charging in its own body is charged; otherwise it needs
// every reachable caller to be charged. Call edges from outside the
// reachable set are ignored — those paths do not start at a verb.
func (g *Graph) Charged(roots []FuncKey) (reachable, charged map[FuncKey]bool) {
	reachable = g.Reachable(roots)
	charged = make(map[FuncKey]bool, len(reachable))
	for k := range reachable {
		charged[k] = true
	}
	for changed := true; changed; {
		changed = false
		for k := range reachable {
			if !charged[k] {
				continue
			}
			fi := g.Funcs[k]
			v := len(fi.Charges) > 0
			if !v {
				considered := 0
				ok := true
				for _, cs := range g.callers[k] {
					if !reachable[cs.Caller] {
						continue
					}
					considered++
					if !charged[cs.Caller] {
						ok = false
						break
					}
				}
				v = considered > 0 && ok
			}
			if !v {
				charged[k] = false
				changed = true
			}
		}
	}
	return reachable, charged
}

// spanSlot addresses one parameter position of a function: slot 0 is
// the method receiver, slots 1..n the declared parameters in order.
type spanSlot struct {
	fn   FuncKey
	slot int
}

// spanFacts computes, for every (function, parameter slot), whether a
// span handed to that slot is closed: the function calls End on it,
// lets it escape to a new owner (returned, stored, sent, passed to an
// unresolved call), or forwards it to a slot that is itself closed.
func (g *Graph) spanFacts() map[spanSlot]bool {
	type forward struct {
		from, to spanSlot
	}
	ok := map[spanSlot]bool{}
	var forwards []forward

	for key, fi := range g.Funcs {
		if fi.Decl.Body == nil {
			continue
		}
		names := map[string]int{}
		if fi.RecvName != "" && fi.RecvName != "_" {
			names[fi.RecvName] = 0
		}
		for i, n := range fi.ParamNames {
			if n != "_" {
				names[n] = i + 1
			}
		}
		if len(names) == 0 {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if sel, isSel := x.Fun.(*ast.SelectorExpr); isSel {
					if id, isID := sel.X.(*ast.Ident); isID {
						if slot, tracked := names[id.Name]; tracked && sel.Sel.Name == "End" {
							ok[spanSlot{key, slot}] = true
						}
					}
				}
				site := g.sites[x]
				for argIdx, a := range x.Args {
					id, isID := a.(*ast.Ident)
					if !isID {
						// A tracked name buried in a larger expression
						// escapes conservatively.
						for name, slot := range names {
							if usesIdent(a, name) {
								ok[spanSlot{key, slot}] = true
							}
						}
						continue
					}
					slot, tracked := names[id.Name]
					if !tracked {
						continue
					}
					if site == nil || !site.Resolved {
						ok[spanSlot{key, slot}] = true
						continue
					}
					callee := g.Funcs[site.Callee]
					if callee == nil || argIdx >= len(callee.ParamNames) {
						// Unknown callee shape or a variadic spill: the
						// span escaped to a new owner.
						ok[spanSlot{key, slot}] = true
						continue
					}
					forwards = append(forwards, forward{
						from: spanSlot{key, slot},
						to:   spanSlot{site.Callee, argIdx + 1},
					})
				}
			case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt:
				for name, slot := range names {
					if nodeUsesIdent(n, name) {
						ok[spanSlot{key, slot}] = true
					}
				}
			case *ast.AssignStmt:
				for _, r := range x.Rhs {
					for name, slot := range names {
						if usesIdent(r, name) {
							ok[spanSlot{key, slot}] = true
						}
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, f := range forwards {
			if !ok[f.from] && ok[f.to] {
				ok[f.from] = true
				changed = true
			}
		}
	}
	return ok
}

// nodeUsesIdent is usesIdent over a statement node.
func nodeUsesIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, isID := c.(*ast.Ident); isID && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
