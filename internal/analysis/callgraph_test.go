package analysis

import (
	"path/filepath"
	"runtime"
	"testing"
)

// graphTree is a two-package fixture exercising the resolution forms
// the interprocedural rules lean on: same-package calls, method calls
// through receivers and locals, cross-package calls through the import
// table, and go/defer edge marking.
func graphTree(t *testing.T) *Tree {
	t.Helper()
	return writeTree(t, map[string]string{
		"internal/shard/a.go": `package shard

import "statdb/internal/colstore"

type Store struct {
	file *colstore.File
}

func (s *Store) Read() ([]float64, error) {
	xs, _, err := s.file.NumericColumn("AGE") //lint:allow error-flow the valid mask is unused here
	return xs, err
}

func (s *Store) Spawn() {
	go s.helper()
	defer s.helper()
}

func (s *Store) helper() {}

func top() {
	s := &Store{}
	if _, err := s.Read(); err != nil {
		return
	}
}
`,
		"internal/colstore/file.go": `package colstore

type File struct{}

func (f *File) NumericColumn(col string) ([]float64, []bool, error) {
	return nil, nil, nil
}
`,
	})
}

func TestCallGraphResolution(t *testing.T) {
	g := graphTree(t).Graph()

	readKey := FuncKey{Pkg: "internal/shard", Recv: "Store", Name: "Read"}
	colKey := FuncKey{Pkg: "internal/colstore", Recv: "File", Name: "NumericColumn"}
	helperKey := FuncKey{Pkg: "internal/shard", Recv: "Store", Name: "helper"}

	if g.Funcs[readKey] == nil || g.Funcs[colKey] == nil {
		t.Fatalf("missing functions in graph: %v", g.SortedFuncs())
	}

	// Cross-package method call through the field's declared type.
	var toCol *CallSite
	for _, cs := range g.Funcs[readKey].Calls {
		if cs.Resolved && cs.Callee == colKey {
			toCol = cs
		}
	}
	if toCol == nil {
		t.Errorf("Store.Read -> colstore.File.NumericColumn edge not resolved")
	}

	// Same-package method call through a composite-literal local.
	topKey := FuncKey{Pkg: "internal/shard", Name: "top"}
	found := false
	for _, cs := range g.Funcs[topKey].Calls {
		if cs.Resolved && cs.Callee == readKey {
			found = true
		}
	}
	if !found {
		t.Errorf("top -> Store.Read edge not resolved through the local binding")
	}

	// go/defer edges carry their flags.
	var goEdge, deferEdge bool
	for _, cs := range g.Callers(helperKey) {
		if cs.Go {
			goEdge = true
		}
		if cs.Deferred {
			deferEdge = true
		}
	}
	if !goEdge || !deferEdge {
		t.Errorf("go/defer edges into helper not marked: go=%v defer=%v", goEdge, deferEdge)
	}
}

func TestSortedFuncsDeterministic(t *testing.T) {
	g := graphTree(t).Graph()
	a := g.SortedFuncs()
	b := g.SortedFuncs()
	if len(a) == 0 {
		t.Fatal("no functions")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SortedFuncs not stable at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHoldsFixpoint(t *testing.T) {
	tree := writeTree(t, map[string]string{
		"internal/core/m.go": `package core

import "sync"

type R struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (r *R) Locked() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.step()
}

func (r *R) step() { r.inner() }

func (r *R) inner() { r.n++ }

func (r *R) Bare() { r.inner() }
`,
	})
	g := tree.Graph()
	holds := g.Holds(LockKey{Type: TypeRef{Pkg: "internal/core", Name: "R"}, Field: "mu"})
	lockedKey := FuncKey{Pkg: "internal/core", Recv: "R", Name: "Locked"}
	stepKey := FuncKey{Pkg: "internal/core", Recv: "R", Name: "step"}
	innerKey := FuncKey{Pkg: "internal/core", Recv: "R", Name: "inner"}
	bareKey := FuncKey{Pkg: "internal/core", Recv: "R", Name: "Bare"}
	if !holds[lockedKey] || !holds[stepKey] {
		t.Errorf("Locked/step should hold mu: %v %v", holds[lockedKey], holds[stepKey])
	}
	if holds[bareKey] {
		t.Errorf("Bare acquires nothing and has no callers; it must not hold mu")
	}
	if holds[innerKey] {
		t.Errorf("inner is reachable from Bare without the lock; it must not hold mu")
	}
}

// BenchmarkFullTree measures a complete load + rule run over the real
// repository, serial (GOMAXPROCS=1) versus parallel, demonstrating the
// one-goroutine-per-package loader and per-rule fan-out pay off.
func BenchmarkFullTree(b *testing.B) {
	root := filepath.Join("..", "..")
	bench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree, err := Load(root)
			if err != nil {
				b.Fatal(err)
			}
			if fs := Run(tree, DefaultRules()); len(fs) != 0 {
				b.Fatalf("repo tree not clean: %v", fs[0])
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		bench(b)
	})
	b.Run("parallel", bench)
}
