package analysis

import (
	"strings"
)

// directiveRule is the pseudo-rule under which problems with the
// //lint:allow directives themselves are reported. It cannot be
// suppressed (a broken directive must be fixed, not allowed).
const directiveRule = "lint-directive"

// allowPrefix is the directive marker. The comment must start exactly
// with this (no space after //, matching Go's //go: convention).
const allowPrefix = "//lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	file   string
	line   int
	col    int
	rule   string
	reason string
	valid  bool // well-formed and names a known rule
	used   bool // suppressed at least one finding
}

// scanDirectives extracts every //lint:allow directive in the tree and
// reports malformed ones (missing rule, missing reason, unknown rule)
// as findings under the lint-directive pseudo-rule.
func scanDirectives(t *Tree, known map[string]bool) ([]*directive, []Finding) {
	var dirs []*directive
	var findings []Finding
	for _, pkg := range t.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Ast.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := t.Fset.Position(c.Pos())
					d := &directive{file: f.Rel, line: pos.Line, col: pos.Column}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
					fields := strings.SplitN(rest, " ", 2)
					switch {
					case rest == "":
						findings = append(findings, Finding{
							File: d.file, Line: d.line, Col: d.col, Rule: directiveRule,
							Msg: "//lint:allow needs a rule id and a reason",
						})
					case len(fields) < 2 || strings.TrimSpace(fields[1]) == "":
						d.rule = fields[0]
						findings = append(findings, Finding{
							File: d.file, Line: d.line, Col: d.col, Rule: directiveRule,
							Msg: "//lint:allow " + d.rule + " needs a reason: //lint:allow " + d.rule + " <why this site is exempt>",
						})
					case !known[fields[0]]:
						d.rule = fields[0]
						findings = append(findings, Finding{
							File: d.file, Line: d.line, Col: d.col, Rule: directiveRule,
							Msg: "//lint:allow names unknown rule " + d.rule,
						})
					default:
						d.rule = fields[0]
						d.reason = strings.TrimSpace(fields[1])
						d.valid = true
					}
					dirs = append(dirs, d)
				}
			}
		}
	}
	return dirs, findings
}

// suppress reports whether a valid directive covers the finding: same
// rule, same file, and the directive sits on the finding's line (a
// trailing comment) or the line directly above it. Matching directives
// are marked used.
func suppress(dirs []*directive, f Finding) bool {
	hit := false
	for _, d := range dirs {
		if !d.valid || d.rule != f.Rule || d.file != f.File {
			continue
		}
		if d.line == f.Line || d.line == f.Line-1 {
			d.used = true
			hit = true
		}
	}
	return hit
}
