package analysis

import (
	"go/ast"
	"go/token"
)

// SentinelErrors (R4) enforces PR 2's error-handling contract: the
// storage sentinels ErrCorrupt and ErrTransient travel wrapped (the
// CorruptError carries page/slot identity, retry layers add context),
// as does the shard-availability sentinel ErrShardDown, so callers
// must match them with errors.Is — a == comparison silently stops
// matching the moment a layer wraps the error. The same applies to
// the typed budget abort: *obs.BudgetError is extracted with
// errors.As, never a type assertion or type switch on the concrete
// type.
type SentinelErrors struct{}

// ID implements Rule.
func (SentinelErrors) ID() string { return "sentinel-errors" }

// Doc implements Rule.
func (SentinelErrors) Doc() string {
	return "match ErrCorrupt/ErrTransient/ErrShardDown with errors.Is and *obs.BudgetError with errors.As (PR 2/4 contract)"
}

// sentinelName reports whether e names one of the wrapped sentinels,
// directly (ErrCorrupt) or qualified (storage.ErrCorrupt).
func sentinelName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == "ErrCorrupt" || x.Name == "ErrTransient" || x.Name == "ErrShardDown" {
			return x.Name
		}
	case *ast.SelectorExpr:
		return sentinelName(x.Sel)
	}
	return ""
}

// namesBudgetError reports whether e is *BudgetError or
// *pkg.BudgetError.
func namesBudgetError(e ast.Expr) bool {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch x := star.X.(type) {
	case *ast.Ident:
		return x.Name == "BudgetError"
	case *ast.SelectorExpr:
		return x.Sel.Name == "BudgetError"
	}
	return false
}

// Check implements Rule.
func (SentinelErrors) Check(t *Tree, rep *Reporter) {
	for _, pkg := range t.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.BinaryExpr:
					if x.Op != token.EQL && x.Op != token.NEQ {
						return true
					}
					name := sentinelName(x.X)
					if name == "" {
						name = sentinelName(x.Y)
					}
					if name != "" {
						rep.Reportf("sentinel-errors", x.Pos(),
							"%s comparison against %s; wrapped errors will not match, use errors.Is", x.Op, name)
					}
				case *ast.TypeAssertExpr:
					if x.Type != nil && namesBudgetError(x.Type) {
						rep.Reportf("sentinel-errors", x.Pos(),
							"type assertion on *BudgetError; wrapped errors will not match, use errors.As")
					}
				case *ast.TypeSwitchStmt:
					for _, stmt := range x.Body.List {
						cc, ok := stmt.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, typ := range cc.List {
							if namesBudgetError(typ) {
								rep.Reportf("sentinel-errors", typ.Pos(),
									"type switch on *BudgetError; wrapped errors will not match, use errors.As")
							}
						}
					}
				}
				return true
			})
		}
	}
}
