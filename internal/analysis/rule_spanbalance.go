package analysis

import (
	"go/ast"
)

// SpanBalance (R7) keeps the profiler's tick accounting sound: a span
// opened with Tracer.Begin must be closed with End in the same
// function, or handed to someone who will close it. An unclosed span
// never folds its self ticks into the enclosing totals, so FoldSpan's
// invariant — profile ticks equal the root's total exactly — silently
// breaks for every query that runs through the leak. The check is
// syntactic: inside each internal/ function, a `sp := x.Begin(...)`
// (or `sp = ...`) must be followed by a reachable `sp.End()` — plain
// or deferred — unless sp escapes the function (returned, passed as an
// argument, stored in a composite literal or another variable), in
// which case closing is the receiver's contract. A Begin whose result
// is discarded outright can never be ended and is always a finding.
//
// Since PR 10 the escape-by-argument exemption is interprocedural:
// when the call resolves through the package call graph, the span only
// counts as handed off if the receiving parameter slot ends it,
// forwards it onward to someone who does, or lets it escape again.
// Passing a live span into a resolved callee that simply ignores it is
// a leak, and is reported here at the Begin site. Unresolved calls
// (stdlib, function values, interfaces) stay exempt — the old
// conservative behaviour.
type SpanBalance struct{}

// ID implements Rule.
func (SpanBalance) ID() string { return "span-balance" }

// Doc implements Rule.
func (SpanBalance) Doc() string {
	return "every Tracer.Begin in internal/ needs a matching End in the same function (defer counts), unless the span escapes to someone who ends it (PR 8 contract, interprocedural since PR 10)"
}

// Check implements Rule.
func (SpanBalance) Check(t *Tree, rep *Reporter) {
	g := t.Graph()
	facts := g.spanFacts()
	for _, pkg := range t.Pkgs {
		if !underDir(pkg.Rel, "internal") {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Ast.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkSpans(g, facts, fn.Body, rep)
			}
		}
	}
}

// isBeginCall returns the call if e is a `<recv>.Begin(...)` call.
func isBeginCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Begin" {
		return nil, false
	}
	return call, true
}

// checkSpans audits one function body. Nested function literals are
// part of the body: a Begin in the outer function ended inside a
// closure (or vice versa) balances, matching how the scatter path
// opens spans around pool callbacks.
func checkSpans(g *Graph, facts map[spanSlot]bool, body *ast.BlockStmt, rep *Reporter) {
	// Pass 1: collect Begin sites — the span variable each binds, or
	// the discarded calls that can never be ended.
	type site struct {
		name string
		call *ast.CallExpr
	}
	var sites []site
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := isBeginCall(st.X); ok {
				rep.Reportf("span-balance", call.Pos(),
					"Begin result discarded; the span can never be ended")
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			call, ok := isBeginCall(st.Rhs[0])
			if !ok {
				return true
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return true // stored into a field/index: escapes by construction
			}
			if id.Name == "_" {
				rep.Reportf("span-balance", call.Pos(),
					"Begin result discarded; the span can never be ended")
				return true
			}
			sites = append(sites, site{name: id.Name, call: call})
		}
		return true
	})

	// Pass 2: for each bound span, look for an End call or an escape
	// anywhere in the body. An escape by argument into a resolved callee
	// only counts if the callee's parameter slot closes the span.
	for _, s := range sites {
		ended, escaped := false, false
		var badForward *FuncKey
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == s.name && sel.Sel.Name == "End" {
						ended = true
					}
				}
				for argIdx, a := range x.Args {
					if !usesIdent(a, s.name) {
						continue
					}
					id, isPlain := a.(*ast.Ident)
					site := g.SiteFor(x)
					if !isPlain || id.Name != s.name || site == nil || !site.Resolved {
						escaped = true
						continue
					}
					callee := g.Funcs[site.Callee]
					if callee == nil || argIdx >= len(callee.ParamNames) {
						escaped = true
						continue
					}
					if facts[spanSlot{site.Callee, argIdx + 1}] {
						escaped = true
					} else if badForward == nil {
						k := site.Callee
						badForward = &k
					}
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if usesIdent(r, s.name) {
						escaped = true
					}
				}
			case *ast.CompositeLit:
				for _, e := range x.Elts {
					if usesIdent(e, s.name) {
						escaped = true
					}
				}
			case *ast.AssignStmt:
				// sp on the right of a later assignment aliases or stores
				// the span; closing it is the new holder's business.
				for _, r := range x.Rhs {
					if r != ast.Expr(s.call) && usesIdent(r, s.name) {
						escaped = true
					}
				}
			case *ast.SendStmt:
				if usesIdent(x.Value, s.name) {
					escaped = true
				}
			}
			return true
		})
		if ended || escaped {
			continue
		}
		if badForward != nil {
			rep.Reportf("span-balance", s.call.Pos(),
				"span %s opened here is passed to %s, which never ends it", s.name, badForward)
			continue
		}
		rep.Reportf("span-balance", s.call.Pos(),
			"span %s opened here has no reachable %s.End() in this function", s.name, s.name)
	}
}

// usesIdent reports whether expr mentions an identifier named name.
// A mention inside a method-call receiver chain counts too — that is
// conservative in the non-flagging direction.
func usesIdent(expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
