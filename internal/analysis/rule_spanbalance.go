package analysis

import (
	"go/ast"
)

// SpanBalance (R7) keeps the profiler's tick accounting sound: a span
// opened with Tracer.Begin must be closed with End in the same
// function, or handed to someone who will close it. An unclosed span
// never folds its self ticks into the enclosing totals, so FoldSpan's
// invariant — profile ticks equal the root's total exactly — silently
// breaks for every query that runs through the leak. The check is
// syntactic: inside each internal/ function, a `sp := x.Begin(...)`
// (or `sp = ...`) must be followed by a reachable `sp.End()` — plain
// or deferred — unless sp escapes the function (returned, passed as an
// argument, stored in a composite literal or another variable), in
// which case closing is the receiver's contract. A Begin whose result
// is discarded outright can never be ended and is always a finding.
type SpanBalance struct{}

// ID implements Rule.
func (SpanBalance) ID() string { return "span-balance" }

// Doc implements Rule.
func (SpanBalance) Doc() string {
	return "every Tracer.Begin in internal/ needs a matching End in the same function (defer counts), unless the span escapes (PR 8 contract)"
}

// Check implements Rule.
func (SpanBalance) Check(t *Tree, rep *Reporter) {
	for _, pkg := range t.Pkgs {
		if !underDir(pkg.Rel, "internal") {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Ast.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkSpans(fn.Body, rep)
			}
		}
	}
}

// isBeginCall returns the call if e is a `<recv>.Begin(...)` call.
func isBeginCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Begin" {
		return nil, false
	}
	return call, true
}

// checkSpans audits one function body. Nested function literals are
// part of the body: a Begin in the outer function ended inside a
// closure (or vice versa) balances, matching how the scatter path
// opens spans around pool callbacks.
func checkSpans(body *ast.BlockStmt, rep *Reporter) {
	// Pass 1: collect Begin sites — the span variable each binds, or
	// the discarded calls that can never be ended.
	type site struct {
		name string
		call *ast.CallExpr
	}
	var sites []site
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := isBeginCall(st.X); ok {
				rep.Reportf("span-balance", call.Pos(),
					"Begin result discarded; the span can never be ended")
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			call, ok := isBeginCall(st.Rhs[0])
			if !ok {
				return true
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return true // stored into a field/index: escapes by construction
			}
			if id.Name == "_" {
				rep.Reportf("span-balance", call.Pos(),
					"Begin result discarded; the span can never be ended")
				return true
			}
			sites = append(sites, site{name: id.Name, call: call})
		}
		return true
	})

	// Pass 2: for each bound span, look for an End call or an escape
	// anywhere in the body.
	for _, s := range sites {
		ended, escaped := false, false
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == s.name && sel.Sel.Name == "End" {
						ended = true
					}
				}
				for _, a := range x.Args {
					if usesIdent(a, s.name) {
						escaped = true
					}
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if usesIdent(r, s.name) {
						escaped = true
					}
				}
			case *ast.CompositeLit:
				for _, e := range x.Elts {
					if usesIdent(e, s.name) {
						escaped = true
					}
				}
			case *ast.AssignStmt:
				// sp on the right of a later assignment aliases or stores
				// the span; closing it is the new holder's business.
				for _, r := range x.Rhs {
					if r != ast.Expr(s.call) && usesIdent(r, s.name) {
						escaped = true
					}
				}
			case *ast.SendStmt:
				if usesIdent(x.Value, s.name) {
					escaped = true
				}
			}
			return true
		})
		if !ended && !escaped {
			rep.Reportf("span-balance", s.call.Pos(),
				"span %s opened here has no reachable %s.End() in this function", s.name, s.name)
		}
	}
}

// usesIdent reports whether expr mentions an identifier named name.
// A mention inside a method-call receiver chain counts too — that is
// conservative in the non-flagging direction.
func usesIdent(expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
