package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureCases lists the fixture trees under testdata/src. Each is a
// miniature module root whose package paths mirror the real tree, so
// the path-conditional rules see realistic directories.
var fixtureCases = []string{
	"obsconfine",
	"nopanic",
	"determinism",
	"sentinel",
	"goroutine",
	"loadclock",
	"metricnames",
	"spanbalance",
	"suppress",
	"lockconfine",
	"chargetrack",
	"errorflow",
}

func runFixture(t *testing.T, name string) []Finding {
	t.Helper()
	tree, err := Load(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return Run(tree, DefaultRules())
}

func render(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFixturesGolden checks every fixture tree against its golden
// findings file — the same deterministic text statdb-vet prints.
func TestFixturesGolden(t *testing.T) {
	for _, name := range fixtureCases {
		t.Run(name, func(t *testing.T) {
			got := render(runFixture(t, name))
			golden := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden: %v (run go test ./internal/analysis -update)", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if got == "" {
				t.Errorf("fixture %s produced no findings; each fixture must demonstrate its rule", name)
			}
		})
	}
}

// TestRepoTreeClean runs the full rule set over the real repository:
// the tree must be finding-free, which is exactly what `make lint`
// enforces.
func TestRepoTreeClean(t *testing.T) {
	tree, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumFiles() < 50 {
		t.Fatalf("loaded only %d files; root detection is off", tree.NumFiles())
	}
	for _, f := range Run(tree, DefaultRules()) {
		t.Errorf("repo tree not clean: %s", f)
	}
}

// TestSuppressionPlacement pins the two legal directive placements:
// trailing on the finding's line and alone on the line above.
func TestSuppressionPlacement(t *testing.T) {
	fs := runFixture(t, "suppress")
	for _, f := range fs {
		if f.Rule == "no-panic" && (strings.Contains(f.Msg, "boot") || f.Line < 10) {
			t.Errorf("suppressed finding leaked: %s", f)
		}
	}
	var missingReason, unused, unknown, kept bool
	for _, f := range fs {
		switch {
		case f.Rule == directiveRule && strings.Contains(f.Msg, "needs a reason"):
			missingReason = true
		case f.Rule == directiveRule && strings.Contains(f.Msg, "unused"):
			unused = true
		case f.Rule == directiveRule && strings.Contains(f.Msg, "unknown rule"):
			unknown = true
		case f.Rule == "no-panic":
			kept = true
		}
	}
	if !missingReason || !unused || !unknown || !kept {
		t.Errorf("directive findings incomplete: missingReason=%v unused=%v unknown=%v keptPanic=%v\n%s",
			missingReason, unused, unknown, kept, render(fs))
	}
}

// TestRuleDocs makes sure every rule carries an ID and a doc line for
// statdb-vet -rules.
func TestRuleDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range DefaultRules() {
		if r.ID() == "" || r.Doc() == "" {
			t.Errorf("rule %T missing ID or Doc", r)
		}
		if seen[r.ID()] {
			t.Errorf("duplicate rule id %s", r.ID())
		}
		seen[r.ID()] = true
	}
	if len(seen) < 10 {
		t.Errorf("want >= 10 rules, have %d", len(seen))
	}
}

// TestLoadPatterns pins the pattern grammar the driver exposes.
func TestLoadPatterns(t *testing.T) {
	root := filepath.Join("testdata", "src", "obsconfine")
	whole, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	one, err := Load(root, "internal/query")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Load(root, "internal/...")
	if err != nil {
		t.Fatal(err)
	}
	if whole.NumFiles() != 3 || sub.NumFiles() != 3 || one.NumFiles() != 1 {
		t.Errorf("NumFiles: whole=%d sub=%d one=%d, want 3/3/1",
			whole.NumFiles(), sub.NumFiles(), one.NumFiles())
	}
	if _, err := Load(root, "no/such/dir"); err == nil {
		t.Error("Load of a missing dir succeeded")
	}
}

// TestMetricNameForm pins the canonical-name grammar.
func TestMetricNameForm(t *testing.T) {
	good := []string{"exec.chunks", "storage.pool.evict_write_failed", "e15.micro", "a", "a_b.c0"}
	bad := []string{"", "Exec.Chunks", "exec..chunks", ".exec", "exec.", "exec-chunks", "exec chunks"}
	for _, n := range good {
		if !metricNameForm.MatchString(n) {
			t.Errorf("canonical name %q rejected", n)
		}
	}
	for _, n := range bad {
		if metricNameForm.MatchString(n) {
			t.Errorf("non-canonical name %q accepted", n)
		}
	}
}
