package analysis

import (
	"go/ast"
	"strings"
)

// NoPanic (R2) keeps PR 2's conversion converted: library code under
// internal/ reports failures as errors (ErrCorrupt, ErrTransient,
// wrapped causes), never panics. Data-dependent conditions — a torn
// page, a truncated tape block — must flow through the sentinel-error
// degrade paths so the Summary Database and recovery logic can act on
// them.
//
// Two escapes exist for genuine programmer-error invariants:
// functions whose names start with "Must" (the regexp.MustCompile
// idiom — MustSchema, MustDefine) are exempt by design, and any other
// site needs an inline //lint:allow no-panic <reason>.
type NoPanic struct{}

// ID implements Rule.
func (NoPanic) ID() string { return "no-panic" }

// Doc implements Rule.
func (NoPanic) Doc() string {
	return "no panic calls in library code under internal/; return sentinel errors (PR 2 contract)"
}

// Check implements Rule.
func (NoPanic) Check(t *Tree, rep *Reporter) {
	for _, pkg := range t.Pkgs {
		if !underDir(pkg.Rel, "internal") {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Ast.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Must") {
					continue
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						rep.Reportf("no-panic", call.Pos(),
							"panic in library code; return an error (ErrCorrupt-style sentinel for data faults)")
					}
					return true
				})
			}
		}
	}
}
