package load

import "time"

// Clock is the driver's wall-clock shim — the one place in this
// package allowed to read real time. Everything the engine measures
// stays in virtual ticks; the driver additionally owns wall latency
// (what an analyst actually felt), and it reads that exclusively
// through a Clock so the determinism vet rule can confine wall-clock
// access to this file. A nil Clock reports zero time and returns from
// Sleep immediately, which is the fully deterministic configuration
// the tests and the E19 digest assertions run under.
type Clock struct {
	start time.Time
}

// NewClock starts a wall clock at the current instant.
func NewClock() *Clock { return &Clock{start: time.Now()} }

// NowUs returns microseconds elapsed since the clock started (0 for a
// nil clock).
func (c *Clock) NowUs() int64 {
	if c == nil {
		return 0
	}
	return time.Since(c.start).Microseconds()
}

// Sleep blocks for us microseconds; a nil clock (or a non-positive
// duration) returns immediately, so deterministic runs never sleep.
func (c *Clock) Sleep(us int64) {
	if c == nil || us <= 0 {
		return
	}
	time.Sleep(time.Duration(us) * time.Microsecond)
}
