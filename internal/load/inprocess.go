package load

import (
	"bytes"

	"statdb/internal/core"
	"statdb/internal/obs"
	"statdb/internal/query"
)

// InProcess returns the NewSession factory for driving a DBMS in the
// same process: each session gets its own query.Executor (its own
// answer buffer, so the digest sees exactly what that session was
// told) attributed through SetSession and quota-gated through its
// session budget. All sessions act as the same analyst, so they share
// the views the fixture materialized.
//
// Concurrent executors share the DBMS tracer, which allows one open
// query at a time; the admission gate is what serializes them. If the
// DBMS has no gate installed, InProcess installs the default (one
// slot, a queue deep enough that closed-loop sessions never shed) —
// driving ungated would race on the tracer.
func InProcess(d *core.DBMS, analyst string) func(id string, budget *obs.Budget) Exec {
	if d.Gate() == nil {
		d.SetGate(core.NewGate(core.GateConfig{Slots: 1, Queue: 4096, Reg: d.MetricsRegistry()}))
	}
	return func(id string, budget *obs.Budget) Exec {
		var buf bytes.Buffer
		e := query.NewExecutor(d, analyst, &buf)
		e.SetSession(id)
		e.SetSessionBudget(budget)
		return func(stmt string) (string, query.Measured, error) {
			buf.Reset()
			m, err := e.RunMeasured(stmt)
			return buf.String(), m, err
		}
	}
}
