package load

import (
	"bytes"
	"testing"

	"statdb/internal/core"
	"statdb/internal/obs"
	"statdb/internal/query"
	"statdb/internal/workload"
)

// fixture builds a DBMS with a materialized microdata view, ready for
// in-process load.
func fixture(t *testing.T) *core.DBMS {
	t.Helper()
	d := core.New()
	d.SetParallelism(2)
	if err := d.LoadRaw("micro", workload.Microdata(2048, 12)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	e := query.NewExecutor(d, "analyst", &out)
	if err := e.Run("materialize mv from micro project AGE,SALARY"); err != nil {
		t.Fatal(err)
	}
	return d
}

func baseCfg(d *core.DBMS, sessions, ops int) Config {
	return Config{
		Sessions:   sessions,
		Ops:        ops,
		Seed:       7,
		View:       "mv",
		Attrs:      []string{"AGE", "SALARY"},
		NewSession: InProcess(d, "analyst"),
		Reg:        d.MetricsRegistry(),
	}
}

func run(t *testing.T, cfg Config) *Report {
	t.Helper()
	drv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := drv.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestDriverDeterministic pins the reproducibility contract: two runs
// of the same config over fresh engines produce identical statements,
// ticks, and answer digests — with no Clock, nothing wall-derived
// exists to differ.
func TestDriverDeterministic(t *testing.T) {
	a := run(t, baseCfg(fixture(t), 4, 20))
	b := run(t, baseCfg(fixture(t), 4, 20))
	if a.Digest != b.Digest || a.Ticks != b.Ticks || a.Statements != b.Statements {
		t.Errorf("reruns diverged: %+v vs %+v", a, b)
	}
	for i := range a.PerSession {
		if a.PerSession[i].Digest != b.PerSession[i].Digest {
			t.Errorf("session %d digest diverged", i)
		}
	}
	if a.ElapsedUs != 0 || a.Throughput != 0 || a.P99Us != 0 {
		t.Errorf("clockless run reported wall results: %+v", a)
	}
}

// TestDriverAnswersInvariantUnderConcurrency is the heart of E19's
// correctness claim: session k's answer digest is bit-identical whether
// it runs alone or beside others, because reads commute and the gate
// only reorders, never rewrites. Runs under -race in CI.
func TestDriverAnswersInvariantUnderConcurrency(t *testing.T) {
	const ops = 15
	concurrent := run(t, baseCfg(fixture(t), 6, ops))
	for i, sr := range concurrent.PerSession {
		// Serial reference: a fresh engine replays only session i's
		// exact statement stream through the same session loop.
		d := fixture(t)
		cfg := baseCfg(d, 1, ops)
		stmts, err := cfg.Trace(i)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		e := query.NewExecutor(d, "analyst", &buf)
		st := &sessionState{res: SessionResult{ID: SessionID(i)}, tracer: obs.NewTracer()}
		drv := &Driver{cfg: cfg}
		drv.runSession(i, st, stmts, obs.NewBudget(0, 0), func(stmt string) (string, query.Measured, error) {
			buf.Reset()
			m, errr := e.RunMeasured(stmt)
			return buf.String(), m, errr
		})
		if st.res.Digest != sr.Digest {
			t.Errorf("session %d: concurrent digest %x != serial %x", i, sr.Digest, st.res.Digest)
		}
		// Ticks are deliberately NOT compared: under concurrency another
		// session may have warmed the Summary DB first, turning this
		// session's recompute into a cache hit. Answers are invariant;
		// costs are shared — that sharing is the paper's thesis.
	}
}

// TestDriverTickConservation is the cross-session conservation hammer:
// many sessions through Executor + ProfileRing + SLO machinery at
// once, then the ledgers must agree exactly — no lost or
// double-counted ticks. Meaningful under -race (CI runs it there).
func TestDriverTickConservation(t *testing.T) {
	d := fixture(t)
	before := d.Metrics()
	rep := run(t, baseCfg(d, 8, 25))
	after := d.Metrics()

	if rep.Statements != 8*25 {
		t.Fatalf("statements = %d, want %d", rep.Statements, 8*25)
	}
	if rep.Errors != 0 || rep.Shed != 0 {
		t.Fatalf("unexpected failures: %+v", rep)
	}

	// 1. Per-session measured ticks sum to the per-verb SLO histograms'
	// delta: what sessions saw is what the registry recorded.
	var histDelta int64
	for name, hv := range after.Histograms {
		if _, ok := labeledVerb(name); ok {
			histDelta += hv.Sum - before.Histograms[name].Sum
		}
	}
	if histDelta != rep.Ticks {
		t.Errorf("query.ticks histograms moved %d, sessions measured %d", histDelta, rep.Ticks)
	}

	// 2. The stitched span tree carries the same total: per-session
	// attribution through the adopted tracers conserves too.
	if rep.Root == nil {
		t.Fatal("no stitched root")
	}
	if got := obs.FoldSpan(rep.Root).Ticks; got != rep.Ticks {
		t.Errorf("stitched tree folds to %d ticks, sessions measured %d", got, rep.Ticks)
	}

	// 3. Every statement was admitted exactly once and profiled exactly
	// once: counter deltas equal the statement count.
	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	if got := delta(obs.MGateAdmitted); got != rep.Statements {
		t.Errorf("gate admitted %d, want %d", got, rep.Statements)
	}
	if got := delta(obs.MProfileQueries); got != rep.Statements {
		t.Errorf("profiled %d, want %d", got, rep.Statements)
	}
	if got := delta(obs.MLoadStatements); got != rep.Statements {
		t.Errorf("load.statements %d, want %d", got, rep.Statements)
	}
	if got := delta(obs.MLoadSessions); got != 8 {
		t.Errorf("load.sessions %d, want 8", got)
	}
	if after.Gauges[obs.MLoadInflight] != 0 || after.Gauges[obs.MGateInflight] != 0 {
		t.Error("inflight gauges did not drain")
	}
}

// labeledVerb splits "query.ticks.<verb>" names.
func labeledVerb(name string) (string, bool) {
	const fam = "query.ticks."
	if len(name) > len(fam) && name[:len(fam)] == fam {
		return name[len(fam):], true
	}
	return "", false
}

// TestDriverSessionQuotaSheds gives each session a quota far below its
// workload: once spent, the gate sheds the rest at the door, counted
// as shed (not engine errors), and the run still drains cleanly.
func TestDriverSessionQuotaSheds(t *testing.T) {
	d := fixture(t)
	cfg := baseCfg(d, 2, 12)
	cfg.SessionTicks = 1 // roughly one statement's worth, then spent
	rep := run(t, cfg)
	if rep.Shed == 0 {
		t.Fatalf("no statements shed under a 1-tick session quota: %+v", rep)
	}
	if rep.Statements != 2*12 {
		t.Errorf("statements = %d, want all issued", rep.Statements)
	}
	snap := d.Metrics()
	if snap.Counters[obs.MLoadShed] != rep.Shed {
		t.Errorf("load.shed = %d, report says %d", snap.Counters[obs.MLoadShed], rep.Shed)
	}
	if snap.Counters[obs.MGateShed] == 0 {
		t.Error("gate shed counter did not move")
	}
}

// TestDriverOpenLoopWallReport exercises the open arrival model with a
// real clock: wall fields populate and the latency histogram fills.
func TestDriverOpenLoopWallReport(t *testing.T) {
	d := fixture(t)
	cfg := baseCfg(d, 3, 6)
	cfg.Arrival = "open"
	cfg.RateUs = 100
	cfg.Clock = NewClock()
	rep := run(t, cfg)
	if rep.ElapsedUs <= 0 || rep.Throughput <= 0 {
		t.Errorf("wall report empty: %+v", rep)
	}
	if rep.P50Us > rep.P99Us {
		t.Errorf("p50 %d > p99 %d", rep.P50Us, rep.P99Us)
	}
	if hv := d.Metrics().Histograms[obs.MLoadLatency]; hv.Count != rep.Statements {
		t.Errorf("latency histogram count %d, want %d", hv.Count, rep.Statements)
	}
}

// TestDriverConfigValidation pins New's rejections.
func TestDriverConfigValidation(t *testing.T) {
	d := fixture(t)
	base := baseCfg(d, 1, 1)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"no sessions", func(c *Config) { c.Sessions = 0 }},
		{"no ops", func(c *Config) { c.Ops = 0 }},
		{"no sink", func(c *Config) { c.NewSession = nil }},
		{"no view", func(c *Config) { c.View = "" }},
		{"bad arrival", func(c *Config) { c.Arrival = "poisson" }},
	} {
		cfg := base
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
}
