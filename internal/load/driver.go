// Package load is the deterministic multi-session load driver: N
// simulated analyst sessions replay internal/workload traces through
// the query layer concurrently, so queueing, admission, and saturation
// — invisible to every single-statement test — become measurable.
//
// Determinism has a precise meaning here. Each session's statement
// stream, think-time schedule, and tick accounting derive from the
// run's seed alone; what the operating system schedules is only *when*
// each statement runs, never *what* it computes. With updates disabled
// the answer stream of session k is therefore bit-identical whether it
// runs alone or beside 255 others — the property E19 asserts under the
// race detector — and per-session tick totals conserve exactly. Wall
// time is the one nondeterministic output, and every read of it is
// confined to the Clock shim in clock.go.
package load

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"

	"statdb/internal/core"
	"statdb/internal/obs"
	"statdb/internal/query"
	"statdb/internal/workload"
)

// Exec runs one statement on behalf of a session, returning the
// rendered answer and the statement's measurement. In-process targets
// wrap query.Executor.RunMeasured; remote targets POST to a live
// statdb serve (and measure nothing — the server does).
type Exec func(stmt string) (out string, m query.Measured, err error)

// Config describes one load run.
type Config struct {
	// Sessions is the number of concurrent simulated analysts (>= 1).
	Sessions int
	// Ops is the statement count per session (>= 1).
	Ops int
	// Seed derives every per-session trace and arrival schedule.
	Seed int64
	// Arrival picks the loop model: "closed" (default) issues the next
	// statement after the previous answer plus a think time; "open"
	// issues on a precomputed schedule regardless of completions, the
	// model that overruns queues and sheds.
	Arrival string
	// ThinkUs is the closed-loop mean think time between a session's
	// statements, in wall microseconds (0 = no thinking).
	ThinkUs int64
	// RateUs is the open-loop mean inter-arrival gap per session, in
	// wall microseconds (0 = issue as fast as possible).
	RateUs int64
	// View and Attrs are the trace's target: compute statements are
	// drawn over these attributes on this view.
	View  string
	Attrs []string
	// Fns optionally overrides the workload function mix.
	Fns []string
	// RepeatBias and UpdateEvery pass through to workload.Trace. Updates
	// make answers order-dependent across sessions, so digest
	// comparisons only hold with UpdateEvery = 0.
	RepeatBias  float64
	UpdateEvery int
	// SessionTicks is each session's tick quota (0 = unlimited): spent
	// sessions are shed at the admission gate.
	SessionTicks int64
	// NewSession builds the statement sink for one session; the budget
	// is the session's quota, which the driver charges with every
	// statement's measured ticks and the gate charges with queue waits.
	NewSession func(id string, budget *obs.Budget) Exec
	// Reg receives the load.* telemetry; nil leaves the run unobserved.
	Reg *obs.Registry
	// Clock is the wall shim: nil disables think times, sleeps, and wall
	// latency measurement — the deterministic configuration.
	Clock *Clock
}

// SessionResult is one session's outcome.
type SessionResult struct {
	ID         string `json:"id"`
	Statements int64  `json:"statements"` // statements issued
	Errors     int64  `json:"errors"`     // failures other than shed
	Shed       int64  `json:"shed"`       // rejected at admission
	Ticks      int64  `json:"ticks"`      // sum of measured statement ticks
	Digest     uint64 `json:"digest"`     // FNV-1a over the statement/answer stream
}

// Report is the whole run's outcome. Wall-derived fields (Elapsed,
// throughput, latency percentiles) are zero when the run had no Clock.
type Report struct {
	Sessions   int             `json:"sessions"`
	Statements int64           `json:"statements"`
	Errors     int64           `json:"errors"`
	Shed       int64           `json:"shed"`
	Ticks      int64           `json:"ticks"`
	Digest     uint64          `json:"digest"` // order-independent fold of session digests
	ElapsedUs  int64           `json:"elapsed_us,omitempty"`
	Throughput float64         `json:"throughput,omitempty"` // statements per wall second
	P50Us      int64           `json:"p50_us,omitempty"`     // exact percentiles over every
	P90Us      int64           `json:"p90_us,omitempty"`     // measured statement latency,
	P99Us      int64           `json:"p99_us,omitempty"`     // from the sorted sample
	PerSession []SessionResult `json:"per_session,omitempty"`
	// Root is the stitched span tree: one "load" root, one "session"
	// child per session (joined in session order, so the tree is
	// deterministic), each charged with its measured statement ticks.
	Root *obs.Span `json:"-"`
}

// lcg steps a 64-bit linear congruential generator — the driver's
// seeded randomness. math/rand is banned in deterministic packages;
// this keeps schedules reproducible byte-for-byte across Go versions.
func lcg(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }

// jitterUs spreads a mean gap over [mean/2, 3*mean/2) using the given
// LCG state, returning the new state.
func jitterUs(mean int64, state uint64) (int64, uint64) {
	if mean <= 0 {
		return 0, state
	}
	state = lcg(state)
	frac := float64(state>>11) / float64(1<<53) // [0,1)
	return mean/2 + int64(frac*float64(mean)), state
}

// Statement renders one workload op as query-language text.
func Statement(op workload.Op, view string) string {
	if op.Fn == "update" {
		// A no-op-shaped maintenance statement: touches the attribute's
		// summary without needing data-dependent predicates.
		return fmt.Sprintf("update %s set %s = 12345 where %s < 0", view, op.Attr, op.Attr)
	}
	return fmt.Sprintf("compute %s %s on %s", op.Fn, op.Attr, view)
}

// SessionID names session i ("s000", "s001", ...).
func SessionID(i int) string { return fmt.Sprintf("s%03d", i) }

// digestStmt folds one statement outcome into a session digest. Errors
// fold too (marked with '!'): a failure mode that appears only under
// concurrency must break the serial comparison.
func digestStmt(h io.Writer, stmt, out string, err error) {
	if err != nil {
		fmt.Fprintf(h, "%s\x00!%s\x01", stmt, err.Error())
		return
	}
	fmt.Fprintf(h, "%s\x00%s\x01", stmt, out)
}

// Replay runs session i's statement stream serially through exec and
// returns the session digest — the serial reference E19 compares each
// concurrent session against. No arrival model, no gate waits: just the
// statements, in order, one at a time.
func (cfg Config) Replay(i int, exec Exec) (uint64, error) {
	stmts, err := cfg.Trace(i)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	for _, stmt := range stmts {
		out, _, err := exec(stmt)
		digestStmt(h, stmt, out, err)
	}
	return h.Sum64(), nil
}

// Trace returns session i's deterministic statement stream under cfg:
// the same (cfg, i) always yields the same statements, which is what
// lets E19 compare a session's concurrent answers against a serial
// replay of the same stream.
func (cfg Config) Trace(i int) ([]string, error) {
	ops, err := workload.Trace(workload.SessionSpec{
		Attrs:       cfg.Attrs,
		Fns:         cfg.Fns,
		Ops:         cfg.Ops,
		RepeatBias:  cfg.RepeatBias,
		UpdateEvery: cfg.UpdateEvery,
		Seed:        cfg.Seed + int64(i)*7919, // distinct prime-strided per-session seeds
	})
	if err != nil {
		return nil, err
	}
	stmts := make([]string, len(ops))
	for j, op := range ops {
		stmts[j] = Statement(op, cfg.View)
	}
	return stmts, nil
}

// Driver runs one configured load. Create with New, run with Run.
type Driver struct {
	cfg Config

	cSessions   *obs.Counter
	cStatements *obs.Counter
	cErrors     *obs.Counter
	cShed       *obs.Counter
	gInflight   *obs.Gauge
	hLatency    *obs.Histogram
}

// New validates cfg and builds a driver.
func New(cfg Config) (*Driver, error) {
	if cfg.Sessions < 1 {
		return nil, fmt.Errorf("load: sessions >= 1 required, got %d", cfg.Sessions)
	}
	if cfg.Ops < 1 {
		return nil, fmt.Errorf("load: ops >= 1 required, got %d", cfg.Ops)
	}
	if cfg.NewSession == nil {
		return nil, fmt.Errorf("load: NewSession sink required")
	}
	if cfg.View == "" || len(cfg.Attrs) == 0 {
		return nil, fmt.Errorf("load: view and attrs required")
	}
	switch cfg.Arrival {
	case "", "closed", "open":
	default:
		return nil, fmt.Errorf("load: arrival %q (want closed or open)", cfg.Arrival)
	}
	d := &Driver{cfg: cfg}
	if cfg.Reg != nil {
		d.cSessions = cfg.Reg.Counter(obs.MLoadSessions)
		d.cStatements = cfg.Reg.Counter(obs.MLoadStatements)
		d.cErrors = cfg.Reg.Counter(obs.MLoadErrors)
		d.cShed = cfg.Reg.Counter(obs.MLoadShed)
		d.gInflight = cfg.Reg.Gauge(obs.MLoadInflight)
		d.hLatency = cfg.Reg.Histogram(obs.MLoadLatency, obs.WallUsBounds())
	}
	return d, nil
}

// sessionState is one session's working set inside Run.
type sessionState struct {
	res       SessionResult
	latencies []int64
	tracer    *obs.Tracer
}

// Run executes the configured load and blocks until every session
// drains. It is safe to call once per Driver.
func (d *Driver) Run() (*Report, error) {
	cfg := d.cfg
	root := obs.NewTracer()
	rootSpan := root.Begin("load", obs.Attr{Key: "sessions", Value: fmt.Sprint(cfg.Sessions)})

	states := make([]*sessionState, cfg.Sessions)
	var wg sync.WaitGroup
	start := cfg.Clock.NowUs()
	for i := 0; i < cfg.Sessions; i++ {
		id := SessionID(i)
		stmts, err := cfg.Trace(i)
		if err != nil {
			return nil, err
		}
		st := &sessionState{res: SessionResult{ID: id}, tracer: root.Adopt(rootSpan)}
		states[i] = st
		budget := obs.NewBudget(cfg.SessionTicks, 0)
		exec := cfg.NewSession(id, budget)
		if exec == nil {
			return nil, fmt.Errorf("load: NewSession(%s) returned nil", id)
		}
		d.cSessions.Inc()
		wg.Add(1)
		go func(i int, st *sessionState) {
			defer wg.Done()
			d.gInflight.Add(1)
			defer d.gInflight.Add(-1)
			d.runSession(i, st, stmts, budget, exec)
		}(i, st)
	}
	wg.Wait()
	rootSpan.End()
	// Join in session order: the stitched tree is identical regardless
	// of how the scheduler interleaved the sessions.
	for _, st := range states {
		st.tracer.Join()
	}

	rep := &Report{Sessions: cfg.Sessions, Root: rootSpan}
	var all []int64
	for _, st := range states {
		rep.Statements += st.res.Statements
		rep.Errors += st.res.Errors
		rep.Shed += st.res.Shed
		rep.Ticks += st.res.Ticks
		// XOR-fold: order-independent, so the combined digest is stable
		// across scheduling too.
		rep.Digest ^= st.res.Digest
		rep.PerSession = append(rep.PerSession, st.res)
		all = append(all, st.latencies...)
	}
	if cfg.Clock != nil {
		rep.ElapsedUs = cfg.Clock.NowUs() - start
		if rep.ElapsedUs > 0 {
			rep.Throughput = float64(rep.Statements) / (float64(rep.ElapsedUs) / 1e6)
		}
		if len(all) > 0 {
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			pct := func(q float64) int64 {
				k := int(q * float64(len(all)-1))
				return all[k]
			}
			rep.P50Us, rep.P90Us, rep.P99Us = pct(0.50), pct(0.90), pct(0.99)
		}
	}
	return rep, nil
}

// runSession replays one session's statements under its arrival model,
// recording results into st. The session's tracer carries one span per
// statement, charged with the statement's measured ticks, so folding
// the stitched tree recovers per-session cost attribution.
func (d *Driver) runSession(i int, st *sessionState, stmts []string, budget *obs.Budget, exec Exec) {
	cfg := d.cfg
	span := st.tracer.Begin("session", obs.Attr{Key: "id", Value: st.res.ID})
	defer span.End()
	h := fnv.New64a()
	rng := uint64(cfg.Seed)*2654435761 + uint64(i) + 1
	open := cfg.Arrival == "open"
	var nextAt int64
	if open {
		nextAt = cfg.Clock.NowUs()
	}
	for _, stmt := range stmts {
		var gap int64
		if open {
			gap, rng = jitterUs(cfg.RateUs, rng)
			nextAt += gap
			if now := cfg.Clock.NowUs(); nextAt > now {
				cfg.Clock.Sleep(nextAt - now)
			}
		} else {
			gap, rng = jitterUs(cfg.ThinkUs, rng)
			cfg.Clock.Sleep(gap)
		}
		t0 := cfg.Clock.NowUs()
		out, m, err := exec(stmt)
		lat := cfg.Clock.NowUs() - t0
		st.res.Statements++
		d.cStatements.Inc()
		if cfg.Clock != nil {
			st.latencies = append(st.latencies, lat)
			d.hLatency.Observe(lat)
		}
		name := m.Verb
		if name == "" {
			name = "statement"
		}
		sspan := st.tracer.Begin(name)
		st.tracer.Charge(m.Ticks)
		sspan.End()
		st.res.Ticks += m.Ticks
		budget.ChargeTicks(m.Ticks)
		if err != nil {
			if isShed(err) {
				st.res.Shed++
				d.cShed.Inc()
			} else {
				st.res.Errors++
				d.cErrors.Inc()
			}
		}
		digestStmt(h, stmt, out, err)
	}
	st.res.Digest = h.Sum64()
}

// isShed reports whether err is an admission rejection — matched
// through the error text as well as the sentinel, so remote sessions
// (whose errors crossed HTTP as strings) classify the same way.
func isShed(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, core.ErrShed) || strings.Contains(err.Error(), "admission shed")
}
