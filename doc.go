// Package statdb is a reproduction of "A Framework for Research in
// Database Management for Statistical Analysis" (Boral, DeWitt, Bates;
// University of Wisconsin–Madison TR #465, February 1982; SIGMOD 1982).
//
// The library implements the paper's full architecture (Figure 3):
// concrete per-analyst views materialized from a raw database on
// simulated sequential storage, a Summary Database per view caching
// function results with rule-driven maintenance (finite-differenced
// aggregates, sliding median windows, lazy invalidation), and a shared
// Management Database of update rules, view definitions and undoable
// update histories — plus the substrates it depends on: a WiSS-like
// paged storage engine, transposed (column) files with run-length
// compression, a B+-tree index, relational operators, and a statistical
// function library.
//
// A shared chunked-execution engine (internal/exec) runs the
// column-shaped work — whole-column statistics, relational select and
// group-by, view materialization and Summary-Database recomputation —
// as fixed-size row chunks folded by a worker pool and merged in chunk
// order. Chunk boundaries depend only on the column length, so
// order-insensitive results are bit-identical to the serial operators
// at any worker count and floating-point moments are deterministic for
// a given chunk size; core.DBMS.SetParallelism (default GOMAXPROCS,
// 1 = serial) sizes the pool.
//
// The engine's cross-package contracts — virtual-tick determinism,
// sentinel-error handling, goroutine and observability confinement,
// canonical metric names — are machine-checked at build time by the
// AST-based checker in internal/analysis (driver: cmd/statdb-vet,
// wired into `make lint`).
//
// See DESIGN.md for the system inventory and per-experiment index,
// EXPERIMENTS.md for the measured results, cmd/experiments for the
// reproduction suite, cmd/statdb for an interactive shell, and
// examples/ for runnable walkthroughs.
package statdb
