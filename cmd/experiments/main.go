// Command experiments runs the complete reproduction suite — every paper
// figure and every quantitative claim (see DESIGN.md's per-experiment
// index) — and prints each result table. Output is deterministic: all
// costs are virtual ticks, passes or cells, never wall time.
//
// Usage:
//
//	experiments [-only ID] [-json]
//
// With -json results are emitted as machine-readable JSON instead of
// aligned text: a single table object with -only, an array otherwise —
// the format of the committed BENCH_*.json perf-trajectory snapshots.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"statdb/internal/bench"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E4)")
	asJSON := flag.Bool("json", false, "emit JSON instead of aligned text")
	flag.Parse()

	var tables []*bench.Table
	for _, ex := range bench.All() {
		if *only != "" && !strings.EqualFold(*only, ex.ID) {
			continue
		}
		tab, err := ex.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", ex.ID, err)
			os.Exit(1)
		}
		if !*asJSON {
			if err := tab.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		tables = append(tables, tab)
	}
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment %q\n", *only)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var err error
		if *only != "" && len(tables) == 1 {
			err = enc.Encode(tables[0])
		} else {
			err = enc.Encode(tables)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
