// Command experiments runs the complete reproduction suite — every paper
// figure and every quantitative claim (see DESIGN.md's per-experiment
// index) — and prints each result table. Output is deterministic: all
// costs are virtual ticks, passes or cells, never wall time.
//
// Usage:
//
//	experiments [-only ID]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"statdb/internal/bench"
)

func main() {
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E4)")
	flag.Parse()

	ran := 0
	for _, ex := range bench.All() {
		if *only != "" && !strings.EqualFold(*only, ex.ID) {
			continue
		}
		tab, err := ex.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", ex.ID, err)
			os.Exit(1)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment %q\n", *only)
		os.Exit(1)
	}
}
