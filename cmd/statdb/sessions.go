package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"statdb/internal/core"
	"statdb/internal/obs"
	"statdb/internal/query"
)

// sessionHub is the serve-side session layer behind POST /query: one
// query.Executor per session id, created on first use, each with its
// own answer buffer, session attribution, and session budget. The
// admission gate — not the hub — serializes statement execution; the
// per-session lock only serializes requests within one session, which
// a well-behaved client issues serially anyway.
type sessionHub struct {
	d            *core.DBMS
	analyst      string
	elog         *obs.EventLog
	sessionTicks int64

	mu       sync.Mutex
	sessions map[string]*serveSession

	cSessions *obs.Counter
	reg       *obs.Registry
}

type serveSession struct {
	mu  sync.Mutex
	buf bytes.Buffer
	e   *query.Executor
}

func newSessionHub(d *core.DBMS, analyst string, elog *obs.EventLog, sessionTicks int64) *sessionHub {
	reg := d.MetricsRegistry()
	return &sessionHub{
		d:            d,
		analyst:      analyst,
		elog:         elog,
		sessionTicks: sessionTicks,
		sessions:     make(map[string]*serveSession),
		cSessions:    reg.Counter(obs.MLoadSessions),
		reg:          reg,
	}
}

func (h *sessionHub) session(id string) *serveSession {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[id]
	if !ok {
		s = &serveSession{}
		s.e = query.NewExecutor(h.d, h.analyst, &s.buf)
		s.e.SetSession(id)
		s.e.SetEventLog(h.elog)
		s.e.SetSessionBudget(obs.NewBudget(h.sessionTicks, 0))
		h.sessions[id] = s
		// The server counts sessions it has observed under the same
		// load.sessions family the driver uses, so a remote load run is
		// visible on the server's own /metrics.
		h.cSessions.Inc()
	}
	return s
}

// ServeHTTP answers POST /query?session=ID with the statement's
// rendered result. Shed statements answer 429 (the admission queue or
// the session quota refused them); other failures answer 400. The
// handler owns the request's wall time and feeds it to the per-verb
// query.wall_us histograms, which is what puts live wall percentiles
// next to tick percentiles on /healthz during load.
func (h *sessionHub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a statement body to /query", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	stmt := strings.TrimSpace(string(body))
	if stmt == "" {
		http.Error(w, "empty statement", http.StatusBadRequest)
		return
	}
	id := r.URL.Query().Get("session")
	if id == "" {
		id = "default"
	}
	s := h.session(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.Reset()
	t0 := time.Now()
	m, err := s.e.RunMeasured(stmt)
	wallUs := time.Since(t0).Microseconds()
	if m.Verb != "" {
		h.reg.Histogram(obs.LabeledName(obs.MQueryWallUs, m.Verb), obs.WallUsBounds()).Observe(wallUs)
	}
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, core.ErrShed) {
			code = http.StatusTooManyRequests
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.buf.String())
}
