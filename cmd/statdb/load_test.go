package main

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"statdb/internal/load"
)

// TestLoadInProcess runs the subcommand end to end over the built-in
// fixture and pins the human report's shape.
func TestLoadInProcess(t *testing.T) {
	var out, errOut strings.Builder
	code := runLoad([]string{
		"-sessions", "4", "-ops", "10", "-rows", "512", "-seed", "3",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d; err=%q", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"load: sessions=4 statements=40 errors=0 shed=0", "gate: admitted="} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// TestLoadJSONDeterministic pins -json output and the determinism
// contract at the CLI level: same seed, same digest.
func TestLoadJSONDeterministic(t *testing.T) {
	runJSON := func() *load.Report {
		var out, errOut strings.Builder
		code := runLoad([]string{
			"-sessions", "3", "-ops", "8", "-rows", "512", "-seed", "11", "-json",
		}, &out, &errOut)
		if code != 0 {
			t.Fatalf("exit %d; err=%q", code, errOut.String())
		}
		var rep load.Report
		if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
			t.Fatalf("unparseable -json output: %v\n%s", err, out.String())
		}
		return &rep
	}
	a, b := runJSON(), runJSON()
	if a.Digest != b.Digest || a.Ticks != b.Ticks {
		t.Errorf("same seed diverged: digest %x/%x ticks %d/%d", a.Digest, b.Digest, a.Ticks, b.Ticks)
	}
	if a.Statements != 3*8 {
		t.Errorf("statements = %d, want 24", a.Statements)
	}
}

// TestLoadAgainstServe is the full remote path: a live `statdb serve`,
// sessions driven over POST /query, live wall percentiles on /healthz,
// and the server's own load.sessions counter moving — the contract the
// CI smoke step greps for.
func TestLoadAgainstServe(t *testing.T) {
	var out, errOut syncBuf
	pr, pw := io.Pipe()
	defer pw.Close()
	exit := make(chan int, 1)
	go func() {
		exit <- runServe([]string{
			"-listen", "127.0.0.1:0",
			"-sample-interval", "10ms",
		}, pr, &out, &errOut)
	}()
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; out=%q err=%q", out.String(), errOut.String())
		}
		if m := serveAddrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The census fixture has no "mv" microdata view; build one the load
	// traces can compute over, through the same /query path.
	resp := postQuery(t, base, "boot", "materialize mv from census80 project POPULATION,AVE_SALARY")
	if !strings.Contains(resp, "materialized") {
		t.Fatalf("materialize over /query = %q", resp)
	}

	var loadOut, loadErr strings.Builder
	code := runLoad([]string{
		"-sessions", "3", "-ops", "6", "-seed", "5",
		"-view", "mv", "-attrs", "POPULATION,AVE_SALARY",
		"-target", base,
	}, &loadOut, &loadErr)
	if code != 0 {
		t.Fatalf("load exit %d; err=%q out=%q", code, loadErr.String(), loadOut.String())
	}
	if !strings.Contains(loadOut.String(), "load: sessions=3 statements=18 errors=0") {
		t.Errorf("load report: %q", loadOut.String())
	}

	// Server-side evidence: sessions counted, wall percentiles live.
	if _, metrics := httpGet(t, base+"/metrics"); !regexp.MustCompile(`statdb_load_sessions [1-9]`).MatchString(metrics) {
		t.Errorf("/metrics missing live load.sessions counter")
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		_, health := httpGet(t, base+"/healthz")
		if strings.Contains(health, "slo compute:") && strings.Contains(health, "wall_p50=") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz never showed live wall percentiles: %q", health)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if _, err := io.WriteString(pw, "quit\n"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exit:
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

// postQuery POSTs one statement to the serve /query endpoint.
func postQuery(t *testing.T, base, session, stmt string) string {
	t.Helper()
	resp, err := http.Post(base+"/query?session="+session, "text/plain", strings.NewReader(stmt))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("POST /query %q = %d: %s", stmt, resp.StatusCode, body)
	}
	return string(body)
}
