package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"statdb/internal/obs"
	"statdb/internal/query"
)

// syncBuf is a goroutine-safe buffer: runServe writes to out from both
// the query-loop goroutine and the main goroutine.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

var serveAddrRe = regexp.MustCompile(`http://([0-9.]+:[0-9]+)`)

// TestServeEndToEnd drives the real subcommand: boot, scrape all four
// endpoints, run statements through the query loop while the endpoint
// is live, watch the counters move, then shut down cleanly via `quit`.
func TestServeEndToEnd(t *testing.T) {
	var out, errOut syncBuf
	pr, pw := io.Pipe()
	exit := make(chan int, 1)
	go func() {
		exit <- runServe([]string{
			"-listen", "127.0.0.1:0",
			"-sample-interval", "10ms",
			"-slow-ticks", "1",
		}, pr, &out, &errOut)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; out=%q err=%q", out.String(), errOut.String())
		}
		if m := serveAddrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	if code, body := httpGet(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := httpGet(t, base+"/metrics"); code != 200 || !strings.Contains(body, "statdb_query_statements 0") {
		t.Errorf("/metrics before workload = %d, missing zero counter:\n%s", code, body)
	}

	if _, err := io.WriteString(pw, "materialize v from figure1\ncompute mean POPULATION on v\n"); err != nil {
		t.Fatal(err)
	}
	var metrics string
	for {
		if time.Now().After(deadline) {
			t.Fatalf("statements never landed in /metrics:\n%s\nout=%q", metrics, out.String())
		}
		_, metrics = httpGet(t, base+"/metrics")
		if strings.Contains(metrics, "statdb_query_statements 2") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(metrics, "statdb_summary_misses 1") {
		t.Errorf("/metrics missing summary miss:\n%s", metrics)
	}
	if code, body := httpGet(t, base+"/statz"); code != 200 || !strings.Contains(body, `"query.statements": 2`) {
		t.Errorf("/statz = %d:\n%s", code, body)
	}
	if code, body := httpGet(t, base+"/tracez"); code != 200 || !strings.Contains(body, "total charge =") {
		t.Errorf("/tracez = %d:\n%s", code, body)
	}
	// The compute crossed -slow-ticks 1, so the event log (on stderr
	// here) carries a warn-severity query record.
	if !strings.Contains(errOut.String(), `"sev":"warn"`) || !strings.Contains(errOut.String(), `"kind":"query"`) {
		t.Errorf("event log missing slow-query record: %q", errOut.String())
	}

	if _, err := io.WriteString(pw, "quit\n"); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("serve exited %d; err=%q", code, errOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down on quit")
	}
	pw.Close()
}

// TestServeScrapeUnderLoad is the -race proof at the server level:
// every endpoint scraped concurrently while an executor churns queries
// and updates and the sampler ticks. The registry, tracer ring, and
// sampler are all mutex/atomic-guarded; this test is where the race
// detector checks that claim end to end.
func TestServeScrapeUnderLoad(t *testing.T) {
	d, err := bootDBMS(1, "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	e := query.NewExecutor(d, "hammer", io.Discard)
	if err := e.Run("materialize v from figure1"); err != nil {
		t.Fatal(err)
	}
	smp := obs.NewSampler(d.Metrics, 32, 0)
	srv := httptest.NewServer(obs.NewHandler(obs.HandlerConfig{
		Snap:    d.Metrics,
		Tracer:  d.Tracer(),
		Sampler: smp,
	}))
	defer srv.Close()

	stop := make(chan struct{})
	var workload sync.WaitGroup
	workload.Add(1)
	go func() { // the query loop (executors are single-goroutine by design)
		defer workload.Done()
		stmts := []string{
			"compute mean POPULATION on v",
			"update v set POPULATION = 100 where SEX = 'M'",
			"compute mean POPULATION on v",
			"explain compute sd POPULATION on v",
		}
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Run(stmts[i%int64(len(stmts))])
			smp.Tick(i)
		}
	}()

	paths := []string{"/metrics", "/statz", "/tracez", "/healthz"}
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(srv.URL + paths[(g+i)%len(paths)])
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("scrape returned %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	workload.Wait()
}

// TestRealMainExitCodes pins the satellite fix: one-shot commands that
// fail exit non-zero, successes exit zero, flag errors exit 2.
func TestRealMainExitCodes(t *testing.T) {
	var errOut bytes.Buffer
	if code := realMain([]string{"compute", "mean", "AGE", "on", "nope"},
		strings.NewReader(""), io.Discard, &errOut); code != 1 {
		t.Errorf("failing positional command exited %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "no view") {
		t.Errorf("stderr missing cause: %q", errOut.String())
	}
	if code := realMain([]string{"-e", "files"},
		strings.NewReader(""), io.Discard, io.Discard); code != 0 {
		t.Errorf("succeeding -e command exited %d, want 0", code)
	}
	if code := realMain([]string{"-no-such-flag"},
		strings.NewReader(""), io.Discard, io.Discard); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
}
