package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNonInteractive(t *testing.T) {
	var out bytes.Buffer
	err := run("tester", 1, "", []string{
		"files",
		"materialize whites from figure1 where RACE = 'W'",
		"compute median AVE_SALARY on whites",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"census80", "figure1", "8 rows", "median(AVE_SALARY)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCommandError(t *testing.T) {
	var out bytes.Buffer
	if err := run("tester", 1, "", []string{"bogus command"}, strings.NewReader(""), &out); err == nil {
		t.Error("bogus command accepted")
	}
}

func TestREPLLoop(t *testing.T) {
	input := strings.Join([]string{
		"materialize v from figure1",
		"not-a-command", // error is printed, loop continues
		"compute max POPULATION on v",
		"quit",
	}, "\n")
	var out bytes.Buffer
	if err := run("tester", 1, "", nil, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "statdb>") || !strings.Contains(s, "error:") {
		t.Errorf("REPL output: %q", s)
	}
	if !strings.Contains(s, "max(POPULATION) = 3.3422988e+07") {
		t.Errorf("compute missing: %q", s)
	}
}

func TestREPLPersistenceAcrossSessions(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	var out bytes.Buffer
	err := run("tester", 1, dir, []string{
		"materialize v from figure1 where SEX = 'M'",
		"publish v",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "database saved") {
		t.Fatalf("no save: %q", out.String())
	}
	out.Reset()
	err = run("someone-else", 1, dir, []string{"show v limit 2"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "loaded database") || !strings.Contains(s, "SEX") {
		t.Errorf("second session output: %q", s)
	}
}

func TestStatsSubcommand(t *testing.T) {
	var out bytes.Buffer
	err := run("tester", 1, "", []string{
		"materialize v from figure1",
		"compute mean POPULATION on v",
		"stats", // what `statdb stats` runs after joinArgs
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"counter summary.misses 1",
		"counter summary.hits 0",
		"counter query.statements 3",
		"counter view.column_scans 1",
		"gauge exec.inflight 0",
		"histogram summary.pass_ticks count=1",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("stats output missing %q:\n%s", want, s)
		}
	}
}

func TestJoinArgs(t *testing.T) {
	if got := joinArgs([]string{"compute", "mean", "AGE", "on", "v"}); got != "compute mean AGE on v" {
		t.Errorf("joinArgs = %q", got)
	}
}

func TestExplainSubcommand(t *testing.T) {
	var out bytes.Buffer
	err := run("tester", 1, "", []string{
		"materialize v from figure1",
		"explain compute mean POPULATION on v",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"mean(POPULATION) =",
		"query: self=0",
		"view.compute [fn=mean attr=POPULATION]",
		"fold [fn=mean engine=serial]",
		"total charge =",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("explain output missing %q:\n%s", want, s)
		}
	}
}
