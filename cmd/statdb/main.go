// Command statdb is an interactive shell over the statistical DBMS: it
// boots a synthetic census raw database onto the simulated tape archive
// and accepts the query language (type `help`).
//
// Usage:
//
//	statdb [-analyst NAME] [-scale N] [-db DIR] [-e "command"]... [command...]
//
// With -e flags (or positional arguments, joined into one statement —
// e.g. `statdb stats`) the given commands run non-interactively;
// otherwise a REPL starts on stdin. With -db the catalog in DIR is
// loaded on start (if present) and the session state is saved back on
// exit, so analyses persist across sessions.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"path/filepath"

	"statdb/internal/catalog"
	"statdb/internal/core"
	"statdb/internal/query"
	"statdb/internal/workload"
)

type commandList []string

func (c *commandList) String() string { return fmt.Sprint(*c) }

func (c *commandList) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	analyst := flag.String("analyst", "analyst1", "analyst identity for this session")
	scale := flag.Int("scale", 1, "census size multiplier (regions x scale)")
	db := flag.String("db", "", "catalog directory: load on start, save on quit")
	var cmds commandList
	flag.Var(&cmds, "e", "command to execute (repeatable); suppresses the REPL")
	flag.Parse()
	// Positional arguments form one statement (`statdb stats`,
	// `statdb compute mean AGE on v`), appended after any -e commands.
	if args := flag.Args(); len(args) > 0 {
		cmds = append(cmds, joinArgs(args))
	}

	if err := run(*analyst, *scale, *db, cmds, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "statdb:", err)
		os.Exit(1)
	}
}

func joinArgs(args []string) string {
	return strings.Join(args, " ")
}

func run(analyst string, scale int, dbDir string, cmds []string, in io.Reader, out io.Writer) error {
	var d *core.DBMS
	if dbDir != "" {
		if _, err := os.Stat(filepath.Join(dbDir, "manifest.json")); err == nil {
			loaded, err := catalog.Load(dbDir)
			if err != nil {
				return fmt.Errorf("loading %s: %w", dbDir, err)
			}
			d = loaded
			fmt.Fprintf(out, "loaded database from %s\n", dbDir)
		}
	}
	if d == nil {
		d = core.New()
		spec := workload.DefaultCensusSpec()
		if scale > 1 {
			spec.Regions *= scale
		}
		census, err := workload.Census(spec)
		if err != nil {
			return err
		}
		if err := d.LoadRaw("census80", census); err != nil {
			return err
		}
		if err := d.LoadRaw("figure1", workload.Figure1()); err != nil {
			return err
		}
	}
	saveOnExit := func() error {
		if dbDir == "" {
			return nil
		}
		if err := catalog.Save(d, dbDir); err != nil {
			return fmt.Errorf("saving %s: %w", dbDir, err)
		}
		fmt.Fprintf(out, "database saved to %s\n", dbDir)
		return nil
	}
	e := query.NewExecutor(d, analyst, out)

	if len(cmds) > 0 {
		for _, c := range cmds {
			if err := e.Run(c); err != nil {
				return fmt.Errorf("%q: %w", c, err)
			}
		}
		return saveOnExit()
	}

	fmt.Fprintf(out, "statdb — statistical database management (analyst %s)\n", analyst)
	fmt.Fprintf(out, "raw files: %v. Type 'help'.\n", d.Archive().Files())
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "statdb> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			if err := sc.Err(); err != nil {
				return err
			}
			return saveOnExit()
		}
		line := sc.Text()
		if line == "quit" || line == "exit" {
			return saveOnExit()
		}
		if err := e.Run(line); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	}
}
