// Command statdb is an interactive shell over the statistical DBMS: it
// boots a synthetic census raw database onto the simulated tape archive
// and accepts the query language (type `help`).
//
// Usage:
//
//	statdb [-analyst NAME] [-scale N] [-db DIR] [-e "command"]... [command...]
//	statdb serve [-listen ADDR] [-max-ticks N] [-max-pages N] [-events FILE] ...
//
// With -e flags (or positional arguments, joined into one statement —
// e.g. `statdb stats`) the given commands run non-interactively;
// otherwise a REPL starts on stdin. With -db the catalog in DIR is
// loaded on start (if present) and the session state is saved back on
// exit, so analyses persist across sessions. A failing one-shot command
// exits non-zero.
//
// `statdb serve` runs the query loop and the observability endpoint
// concurrently: /metrics (Prometheus text), /statz (JSON snapshot +
// sampled series), /tracez (recent query span trees), /profilez
// (continuous per-verb profiles) and /healthz (rolling SLO report when
// -slo-* thresholds are set).
// Statements are still read from stdin; on stdin EOF the server keeps
// serving until SIGINT/SIGTERM or a `quit` statement.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"statdb/internal/catalog"
	"statdb/internal/core"
	"statdb/internal/obs"
	"statdb/internal/query"
	"statdb/internal/workload"
)

type commandList []string

func (c *commandList) String() string { return fmt.Sprint(*c) }

func (c *commandList) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// realMain is main with its exit code surfaced, so tests can assert the
// one-shot failure path without spawning a process.
func realMain(args []string, in io.Reader, out, errw io.Writer) int {
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], in, out, errw)
	}
	if len(args) > 0 && args[0] == "load" {
		return runLoad(args[1:], out, errw)
	}
	fs := flag.NewFlagSet("statdb", flag.ContinueOnError)
	fs.SetOutput(errw)
	analyst := fs.String("analyst", "analyst1", "analyst identity for this session")
	scale := fs.Int("scale", 1, "census size multiplier (regions x scale)")
	db := fs.String("db", "", "catalog directory: load on start, save on quit")
	var cmds commandList
	fs.Var(&cmds, "e", "command to execute (repeatable); suppresses the REPL")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Positional arguments form one statement (`statdb stats`,
	// `statdb compute mean AGE on v`), appended after any -e commands.
	if rest := fs.Args(); len(rest) > 0 {
		cmds = append(cmds, joinArgs(rest))
	}
	if err := run(*analyst, *scale, *db, cmds, in, out); err != nil {
		fmt.Fprintln(errw, "statdb:", err)
		return 1
	}
	return 0
}

func joinArgs(args []string) string {
	return strings.Join(args, " ")
}

// bootDBMS loads the catalog from dbDir when one exists there, else
// boots the synthetic census + Figure 1 raw database.
func bootDBMS(scale int, dbDir string, out io.Writer) (*core.DBMS, error) {
	if dbDir != "" {
		if _, err := os.Stat(filepath.Join(dbDir, "manifest.json")); err == nil {
			d, err := catalog.Load(dbDir)
			if err != nil {
				return nil, fmt.Errorf("loading %s: %w", dbDir, err)
			}
			fmt.Fprintf(out, "loaded database from %s\n", dbDir)
			return d, nil
		}
	}
	d := core.New()
	spec := workload.DefaultCensusSpec()
	if scale > 1 {
		spec.Regions *= scale
	}
	census, err := workload.Census(spec)
	if err != nil {
		return nil, err
	}
	if err := d.LoadRaw("census80", census); err != nil {
		return nil, err
	}
	if err := d.LoadRaw("figure1", workload.Figure1()); err != nil {
		return nil, err
	}
	return d, nil
}

func saveDBMS(d *core.DBMS, dbDir string, out io.Writer) error {
	if dbDir == "" {
		return nil
	}
	if err := catalog.Save(d, dbDir); err != nil {
		return fmt.Errorf("saving %s: %w", dbDir, err)
	}
	fmt.Fprintf(out, "database saved to %s\n", dbDir)
	return nil
}

func run(analyst string, scale int, dbDir string, cmds []string, in io.Reader, out io.Writer) error {
	d, err := bootDBMS(scale, dbDir, out)
	if err != nil {
		return err
	}
	e := query.NewExecutor(d, analyst, out)

	if len(cmds) > 0 {
		for _, c := range cmds {
			if err := e.Run(c); err != nil {
				return fmt.Errorf("%q: %w", c, err)
			}
		}
		return saveDBMS(d, dbDir, out)
	}

	fmt.Fprintf(out, "statdb — statistical database management (analyst %s)\n", analyst)
	fmt.Fprintf(out, "raw files: %v. Type 'help'.\n", d.Archive().Files())
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "statdb> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			if err := sc.Err(); err != nil {
				return err
			}
			return saveDBMS(d, dbDir, out)
		}
		line := sc.Text()
		if line == "quit" || line == "exit" {
			return saveDBMS(d, dbDir, out)
		}
		if err := e.Run(line); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	}
}

// runServe is the `statdb serve` subcommand: the query loop and the
// observability endpoint running concurrently over one DBMS.
func runServe(args []string, in io.Reader, out, errw io.Writer) int {
	fs := flag.NewFlagSet("statdb serve", flag.ContinueOnError)
	fs.SetOutput(errw)
	listen := fs.String("listen", "127.0.0.1:8080", "address for /metrics, /statz, /tracez, /healthz")
	analyst := fs.String("analyst", "analyst1", "analyst identity for this session")
	scale := fs.Int("scale", 1, "census size multiplier (regions x scale)")
	db := fs.String("db", "", "catalog directory: load on start, save on shutdown")
	maxTicks := fs.Int64("max-ticks", 0, "per-query tick budget (0 = unlimited)")
	maxPages := fs.Int64("max-pages", 0, "per-query page-read budget (0 = unlimited)")
	events := fs.String("events", "", "event-log JSONL path (default: stderr)")
	eventsMax := fs.Int64("events-max-bytes", 1<<20, "rotate the event log past this size")
	slowTicks := fs.Int64("slow-ticks", 0, "mark queries at or above this many ticks as slow (0 = off)")
	sampleEvery := fs.Int64("log-sample", 1, "head-sample routine query records: keep 1 in N")
	interval := fs.Duration("sample-interval", time.Second, "metrics sampler period")
	window := fs.Int("sample-window", 120, "samples retained in the time-series ring")
	sloP99 := fs.Int64("slo-p99-ticks", 0, "warn on /healthz when a verb's windowed p99 exceeds this many ticks (0 = off)")
	sloErrRate := fs.Float64("slo-error-rate", 0, "warn on /healthz when a verb's windowed error rate exceeds this fraction (0 = off)")
	sloBreachRate := fs.Float64("slo-breach-rate", 0, "warn on /healthz when a verb's windowed budget-breach rate exceeds this fraction (0 = off)")
	gateSlots := fs.Int("gate-slots", 1, "admission gate concurrency for /query sessions")
	gateQueue := fs.Int("gate-queue", 64, "admission gate queue bound; overflow sheds with 429")
	sessionTicks := fs.Int64("session-ticks", 0, "per-/query-session tick quota; spent sessions shed (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	d, err := bootDBMS(*scale, *db, out)
	if err != nil {
		fmt.Fprintln(errw, "statdb serve:", err)
		return 1
	}
	d.SetQueryBudget(*maxTicks, *maxPages)
	// The gate serializes the engine across the stdin loop and every
	// /query session, and makes the resulting queueing observable.
	d.SetGate(core.NewGate(core.GateConfig{
		Slots: *gateSlots,
		Queue: *gateQueue,
		Reg:   d.MetricsRegistry(),
		Wall:  wallClockUs(),
	}))

	logCfg := obs.EventLogConfig{
		Path:        *events,
		MaxBytes:    *eventsMax,
		SlowTicks:   *slowTicks,
		SampleEvery: *sampleEvery,
	}
	if *events == "" {
		logCfg.W = errw
	}
	elog, err := obs.NewEventLog(logCfg)
	if err != nil {
		fmt.Fprintln(errw, "statdb serve:", err)
		return 1
	}
	defer elog.Close()

	e := query.NewExecutor(d, *analyst, out)
	e.SetEventLog(elog)

	// In serve mode the sampler's time axis is the wall clock
	// (milliseconds since start); tests use cost-model ticks instead.
	start := time.Now()
	smp := obs.NewSampler(d.Metrics, *window, 0)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(errw, "statdb serve:", err)
		return 1
	}
	mux := http.NewServeMux()
	mux.Handle("/", obs.NewHandler(obs.HandlerConfig{
		Snap:     d.Metrics,
		Tracer:   d.Tracer(),
		Sampler:  smp,
		Profiles: d.Profiles(),
		SLO: obs.NewSLO(smp, obs.SLOConfig{
			P99Ticks:      *sloP99,
			MaxErrorRate:  *sloErrRate,
			MaxBreachRate: *sloBreachRate,
		}),
	}))
	mux.Handle("/query", newSessionHub(d, *analyst, elog, *sessionTicks))
	srv := &http.Server{Handler: mux}
	fmt.Fprintf(out, "statdb serving on http://%s (/metrics /statz /tracez /profilez /healthz, POST /query)\n", ln.Addr())
	elog.Log(obs.Event{Kind: "serve", Msg: fmt.Sprintf("listening on %s", ln.Addr())})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()

	samplerDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(*interval)
		defer tick.Stop()
		for {
			select {
			case <-samplerDone:
				return
			case <-tick.C:
				smp.Tick(time.Since(start).Milliseconds())
			}
		}
	}()

	// The query loop: statements from stdin, results to out. EOF does
	// not stop the server (CI backgrounds `statdb serve </dev/null`);
	// `quit`/`exit` does.
	quit := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(in)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "quit" || line == "exit" {
				close(quit)
				return
			}
			if line == "" {
				continue
			}
			if err := e.Run(line); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		}
	}()

	code := 0
	select {
	case <-ctx.Done():
	case <-quit:
	case err := <-srvErr:
		fmt.Fprintln(errw, "statdb serve:", err)
		code = 1
	}
	close(samplerDone)
	shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	elog.Log(obs.Event{Kind: "serve", Msg: "shutting down"})
	if err := saveDBMS(d, *db, out); err != nil {
		fmt.Fprintln(errw, "statdb serve:", err)
		code = 1
	}
	return code
}
