package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"statdb/internal/core"
	"statdb/internal/load"
	"statdb/internal/obs"
	"statdb/internal/query"
	"statdb/internal/workload"
)

// runLoad is the `statdb load` subcommand: a deterministic
// multi-session load run, either in-process over a fresh microdata
// fixture or against a live `statdb serve` via POST /query.
func runLoad(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("statdb load", flag.ContinueOnError)
	fs.SetOutput(errw)
	sessions := fs.Int("sessions", 8, "concurrent simulated analyst sessions")
	ops := fs.Int("ops", 50, "statements per session")
	seed := fs.Int64("seed", 1, "trace and schedule seed")
	arrival := fs.String("arrival", "closed", "arrival model: closed (think-time loop) or open (scheduled)")
	thinkUs := fs.Int64("think-us", 0, "closed-loop mean think time between statements (µs)")
	rateUs := fs.Int64("rate-us", 0, "open-loop mean inter-arrival gap per session (µs)")
	sessionTicks := fs.Int64("session-ticks", 0, "per-session tick quota; spent sessions shed (0 = unlimited)")
	slots := fs.Int("gate-slots", 1, "admission gate concurrency (in-process)")
	queue := fs.Int("gate-queue", 4096, "admission gate queue bound (in-process)")
	rows := fs.Int("rows", 4096, "microdata rows in the in-process fixture")
	repeatBias := fs.Float64("repeat-bias", 0.6, "probability an op repeats an earlier (fn, attr) pair")
	view := fs.String("view", "mv", "view the traces compute over")
	attrs := fs.String("attrs", "AGE,SALARY", "comma-separated trace attributes")
	target := fs.String("target", "", "base URL of a live `statdb serve` to drive instead of in-process")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := load.Config{
		Sessions:   *sessions,
		Ops:        *ops,
		Seed:       *seed,
		Arrival:    *arrival,
		ThinkUs:    *thinkUs,
		RateUs:     *rateUs,
		View:       *view,
		Attrs:      strings.Split(*attrs, ","),
		RepeatBias: *repeatBias,
		Clock:      load.NewClock(),
	}
	if *sessionTicks > 0 {
		cfg.SessionTicks = *sessionTicks
	}

	var d *core.DBMS
	if *target == "" {
		d = core.New()
		if err := d.LoadRaw("micro", workload.Microdata(*rows, *seed)); err != nil {
			fmt.Fprintln(errw, "statdb load:", err)
			return 1
		}
		var buf bytes.Buffer
		e := query.NewExecutor(d, "analyst", &buf)
		stmt := fmt.Sprintf("materialize %s from micro project %s", cfg.View, *attrs)
		if err := e.Run(stmt); err != nil {
			fmt.Fprintln(errw, "statdb load:", err)
			return 1
		}
		d.SetGate(core.NewGate(core.GateConfig{
			Slots: *slots,
			Queue: *queue,
			Reg:   d.MetricsRegistry(),
			Wall:  wallClockUs(),
		}))
		cfg.NewSession = load.InProcess(d, "analyst")
		cfg.Reg = d.MetricsRegistry()
	} else {
		base := strings.TrimRight(*target, "/")
		reg := obs.NewRegistry()
		obs.RegisterBaseline(reg)
		cfg.NewSession = httpSessions(base)
		cfg.Reg = reg
	}

	drv, err := load.New(cfg)
	if err != nil {
		fmt.Fprintln(errw, "statdb load:", err)
		return 1
	}
	rep, err := drv.Run()
	if err != nil {
		fmt.Fprintln(errw, "statdb load:", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(errw, "statdb load:", err)
			return 1
		}
	} else {
		writeLoadReport(out, rep, d)
	}
	if rep.Errors > 0 {
		return 1
	}
	return 0
}

// wallClockUs returns a µs wall-clock shim for the admission gate.
func wallClockUs() func() int64 {
	start := time.Now()
	return func() int64 { return time.Since(start).Microseconds() }
}

// httpSessions drives a live statdb serve: each statement is one POST
// /query?session=ID. The server owns all measurement; the client's
// Measured stays zero.
func httpSessions(base string) func(id string, budget *obs.Budget) load.Exec {
	client := &http.Client{Timeout: 30 * time.Second}
	return func(id string, budget *obs.Budget) load.Exec {
		endpoint := base + "/query?session=" + url.QueryEscape(id)
		return func(stmt string) (string, query.Measured, error) {
			resp, err := client.Post(endpoint, "text/plain", strings.NewReader(stmt))
			if err != nil {
				return "", query.Measured{}, err
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			if err != nil {
				return "", query.Measured{}, err
			}
			if resp.StatusCode != http.StatusOK {
				return "", query.Measured{}, fmt.Errorf("%s", strings.TrimSpace(string(body)))
			}
			return string(body), query.Measured{}, nil
		}
	}
}

// writeLoadReport renders the human summary: totals, wall results, and
// — for in-process runs — the gate's admission ledger.
func writeLoadReport(out io.Writer, rep *load.Report, d *core.DBMS) {
	fmt.Fprintf(out, "load: sessions=%d statements=%d errors=%d shed=%d ticks=%d digest=%016x\n",
		rep.Sessions, rep.Statements, rep.Errors, rep.Shed, rep.Ticks, rep.Digest)
	if rep.ElapsedUs > 0 {
		fmt.Fprintf(out, "wall: elapsed=%dus throughput=%.1f/s p50=%dus p90=%dus p99=%dus\n",
			rep.ElapsedUs, rep.Throughput, rep.P50Us, rep.P90Us, rep.P99Us)
	}
	if d != nil {
		snap := d.Metrics()
		fmt.Fprintf(out, "gate: admitted=%d shed=%d wait_p99=%s\n",
			snap.Counters[obs.MGateAdmitted], snap.Counters[obs.MGateShed],
			histP99(snap.Histograms[obs.MGateWaitWall]))
	}
}

func histP99(hv obs.HistValue) string {
	if v, ok := hv.Quantile(0.99); ok {
		return fmt.Sprintf("%.0fus", v)
	}
	return "n/a"
}
