package main

import (
	"encoding/json"
	"io"

	"statdb/internal/analysis"
)

// SARIF 2.1.0 output (-format sarif): the minimal static-analysis
// interchange document CI services turn into inline annotations. Only
// the fields consumers actually read are emitted, and both the rule
// table and the results keep statdb-vet's deterministic order, so the
// document is golden-testable byte for byte.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the findings as one indented SARIF 2.1.0 document.
func writeSARIF(w io.Writer, rules []analysis.Rule, findings []analysis.Finding) error {
	drv := sarifDriver{Name: "statdb-vet"}
	for _, r := range rules {
		drv.Rules = append(drv.Rules, sarifRule{
			ID:               r.ID(),
			ShortDescription: sarifMessage{Text: r.Doc()},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	doc := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: drv},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
