package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fixture returns the -root argument for one analysis fixture tree.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", "src", name)
}

// TestFixturesExitNonzero is the acceptance check: the driver exits 1
// with a deterministic finding on every fixture package.
func TestFixturesExitNonzero(t *testing.T) {
	for _, name := range []string{"obsconfine", "nopanic", "determinism", "sentinel", "goroutine", "metricnames", "suppress"} {
		var out, errOut bytes.Buffer
		code := realMain([]string{"-root", fixture(name), "./..."}, &out, &errOut)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1 (stderr: %s)", name, code, errOut.String())
		}
		if !strings.Contains(out.String(), ": [") {
			t.Errorf("%s: no findings printed:\n%s", name, out.String())
		}
	}
}

// TestRepoTreeExitZero runs the driver over the real module.
func TestRepoTreeExitZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := realMain([]string{"-root", filepath.Join("..", ".."), "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on the repo tree, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "statdb-vet: ok") {
		t.Errorf("missing ok line:\n%s", out.String())
	}
}

// TestJSONOutput checks the -json flag emits one valid JSON object per
// finding with the stable field set.
func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := realMain([]string{"-root", fixture("nopanic"), "-json", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSONL output")
	}
	for _, ln := range lines {
		var f struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Col  int    `json:"col"`
			Rule string `json:"rule"`
			Msg  string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(ln), &f); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if f.File == "" || f.Line == 0 || f.Rule == "" || f.Msg == "" {
			t.Errorf("incomplete finding: %q", ln)
		}
	}
}

// TestRulesFlag lists the contracts.
func TestRulesFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-rules"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, id := range []string{"obs-confine", "no-panic", "determinism", "sentinel-errors", "goroutine-confine", "metric-names"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-rules output missing %s:\n%s", id, out.String())
		}
	}
}

// TestBadRootExitTwo pins the load-error exit code.
func TestBadRootExitTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-root", fixture("no-such-fixture"), "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
