package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the SARIF golden file")

// fixture returns the -root argument for one analysis fixture tree.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", "src", name)
}

// TestFixturesExitNonzero is the acceptance check: the driver exits 1
// with a deterministic finding on every fixture package.
func TestFixturesExitNonzero(t *testing.T) {
	for _, name := range []string{"obsconfine", "nopanic", "determinism", "sentinel", "goroutine", "metricnames", "suppress", "lockconfine", "chargetrack", "errorflow"} {
		var out, errOut bytes.Buffer
		code := realMain([]string{"-root", fixture(name), "./..."}, &out, &errOut)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1 (stderr: %s)", name, code, errOut.String())
		}
		if !strings.Contains(out.String(), ": [") {
			t.Errorf("%s: no findings printed:\n%s", name, out.String())
		}
	}
}

// TestRepoTreeExitZero runs the driver over the real module.
func TestRepoTreeExitZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := realMain([]string{"-root", filepath.Join("..", ".."), "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on the repo tree, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "statdb-vet: ok") {
		t.Errorf("missing ok line:\n%s", out.String())
	}
}

// TestJSONOutput checks the -json flag emits one valid JSON object per
// finding with the stable field set.
func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := realMain([]string{"-root", fixture("nopanic"), "-json", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSONL output")
	}
	for _, ln := range lines {
		var f struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Col  int    `json:"col"`
			Rule string `json:"rule"`
			Msg  string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(ln), &f); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if f.File == "" || f.Line == 0 || f.Rule == "" || f.Msg == "" {
			t.Errorf("incomplete finding: %q", ln)
		}
	}
}

// TestRulesFlag lists the contracts.
func TestRulesFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-rules"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, id := range []string{"obs-confine", "no-panic", "determinism", "sentinel-errors", "goroutine-confine", "metric-names"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-rules output missing %s:\n%s", id, out.String())
		}
	}
}

// TestBadRootExitTwo pins the load-error exit code.
func TestBadRootExitTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-root", fixture("no-such-fixture"), "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestParseFailureExitTwo: a tree with a syntax error is a load
// problem — the driver prints the parse error and exits 2, it does not
// panic and does not report findings.
func TestParseFailureExitTwo(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "bad")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("package bad\n\nfunc F( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-root", root, "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if errOut.Len() == 0 {
		t.Error("no parse diagnostic on stderr")
	}
}

// TestBadFormatExitTwo pins the usage-error path for -format.
func TestBadFormatExitTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-format", "xml"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown -format") {
		t.Errorf("missing usage diagnostic: %s", errOut.String())
	}
}

// TestSARIFGolden runs -format sarif over the errorflow fixture and
// compares the whole document byte for byte (regenerate with
// go test ./cmd/statdb-vet -run SARIF -update).
func TestSARIFGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	code := realMain([]string{"-root", fixture("errorflow"), "-format", "sarif", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	golden := filepath.Join("testdata", "errorflow.sarif.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("SARIF output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", out.String(), want)
	}
	// Sanity beyond byte equality: the document is valid JSON and the
	// run carries every rule plus at least one result.
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version=%q runs=%d", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "statdb-vet" || len(run.Tool.Driver.Rules) == 0 {
		t.Errorf("driver block incomplete: %+v", run.Tool.Driver)
	}
	if len(run.Results) == 0 {
		t.Error("no results for a fixture with findings")
	}
	for _, res := range run.Results {
		if res.RuleID != "error-flow" {
			t.Errorf("unexpected ruleId %q for the errorflow fixture", res.RuleID)
		}
	}
}
