// statdb-vet is the build-time contract checker: it parses every
// non-test package with the stdlib AST tooling and enforces the
// engine's determinism, error and confinement invariants (see
// internal/analysis for the rule set and DESIGN.md "Static analysis"
// for the contract each rule encodes).
//
// Usage:
//
//	statdb-vet [-root dir] [-format text|json|sarif] [-rules] [pattern ...]
//
// Patterns are root-relative directories; a trailing /... selects the
// subtree and the default is ./... over the enclosing module. Findings
// print one per line as file:line: [rule-id] message; -format json
// emits JSONL (the legacy -json flag is an alias) and -format sarif
// emits a SARIF 2.1.0 document CI renders as inline annotations. Any
// finding makes the exit status 1; load or usage problems exit 2.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"statdb/internal/analysis"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("statdb-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON lines (alias for -format json)")
	format := fs.String("format", "", "output format: text (default), json, or sarif")
	root := fs.String("root", "", "tree root to analyze (default: the enclosing module root)")
	listRules := fs.Bool("rules", false, "list the rule ids and contracts, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "":
		if *jsonOut {
			*format = "json"
		} else {
			*format = "text"
		}
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "statdb-vet: unknown -format %q (want text, json or sarif)\n", *format)
		return 2
	}

	rules := analysis.DefaultRules()
	if *listRules {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-18s %s\n", r.ID(), r.Doc())
		}
		return 0
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = moduleRoot()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	tree, err := analysis.Load(dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	findings := analysis.Run(tree, rules)
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
		}
	case "sarif":
		if err := writeSARIF(stdout, rules, findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	if *format == "text" {
		fmt.Fprintf(stdout, "statdb-vet: ok (%d files, %d rules)\n", tree.NumFiles(), len(rules))
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("statdb-vet: no go.mod above the working directory; pass -root")
		}
		dir = parent
	}
}
