// Command benchdiff guards the committed perf trajectory: for every
// BENCH_<ID>.json snapshot it re-runs experiment <ID> fresh (in
// process, through the same internal/bench registry cmd/experiments
// uses) and diffs the new table against the committed one.
//
// The diff distinguishes what can be held exactly from what cannot.
// Structure — ID, title, header, row count, row labels — must match
// exactly: a changed shape means the committed snapshot is stale.
// Deterministic numeric cells (virtual ticks, row counts, tick-derived
// speedups) must agree within -tol. Noisy cells — wall-clock ns/op,
// throughput, latency percentiles, scheduling-dependent shed counts —
// are checked structurally only (numeric stays numeric, text matches),
// because their values differ across machines by design. A "CLAIM
// FAILED" marker in either the fresh or the committed finding fails the
// run regardless; a "CLAIM NOISY" marker (an experiment's own
// annotation that a wall-clock claim missed on this machine) is
// printed as a warning but never fails the run.
//
// Usage:
//
//	benchdiff [-dir DIR] [-tol FRAC] [ID...]
//
// With no IDs every BENCH_*.json under -dir is checked. Exits nonzero
// on any mismatch, naming each offending cell.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"statdb/internal/bench"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	dir := fs.String("dir", ".", "directory holding the committed BENCH_*.json snapshots")
	tol := fs.Float64("tol", 0.01, "relative tolerance for deterministic numeric cells")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ids := fs.Args()
	if len(ids) == 0 {
		files, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
		if err != nil {
			fmt.Fprintln(errw, "benchdiff:", err)
			return 1
		}
		for _, f := range files {
			id := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(f), "BENCH_"), ".json")
			ids = append(ids, id)
		}
		sort.Strings(ids)
	}
	if len(ids) == 0 {
		fmt.Fprintf(errw, "benchdiff: no BENCH_*.json under %s\n", *dir)
		return 1
	}

	failed := 0
	for _, id := range ids {
		committed, err := readTable(filepath.Join(*dir, "BENCH_"+id+".json"))
		if err != nil {
			fmt.Fprintln(errw, "benchdiff:", err)
			failed++
			continue
		}
		fresh, err := runExperiment(id)
		if err != nil {
			fmt.Fprintln(errw, "benchdiff:", err)
			failed++
			continue
		}
		problems := diffTables(committed, fresh, *tol)
		if len(problems) == 0 {
			if strings.Contains(fresh.Finding, "CLAIM NOISY") {
				fmt.Fprintf(out, "benchdiff: %s warning (non-gating): %s\n", id, fresh.Finding)
			}
			strict, noisy := countCells(committed)
			fmt.Fprintf(out, "benchdiff: %s ok (%d cells held to %.0f%%, %d noisy cells structural)\n",
				id, strict, *tol*100, noisy)
			continue
		}
		failed++
		for _, p := range problems {
			fmt.Fprintf(errw, "benchdiff: %s: %s\n", id, p)
		}
	}
	if failed > 0 {
		fmt.Fprintf(errw, "benchdiff: %d of %d snapshots diverged\n", failed, len(ids))
		return 1
	}
	return 0
}

func readTable(path string) (*bench.Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t bench.Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &t, nil
}

func runExperiment(id string) (*bench.Table, error) {
	for _, ex := range bench.All() {
		if strings.EqualFold(ex.ID, id) {
			return ex.Run()
		}
	}
	return nil, fmt.Errorf("no experiment %q in the registry (stale snapshot?)", id)
}

// noisyColumn reports whether a header names a measurement that varies
// across machines or schedules: wall clock, rates, latency
// percentiles, and shed counts (a scheduling outcome, not a
// deterministic one).
func noisyColumn(header string) bool {
	h := strings.ToLower(header)
	for _, frag := range []string{"ns/op", "overhead", "wall", "throughput", "_us", "elapsed", "shed"} {
		if strings.Contains(h, frag) {
			return true
		}
	}
	return false
}

func numeric(cell string) (float64, bool) {
	s := strings.TrimSuffix(strings.TrimSpace(cell), "x")
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// diffTables returns every way fresh diverges from committed.
func diffTables(committed, fresh *bench.Table, tol float64) []string {
	var problems []string
	if strings.Contains(fresh.Finding, "CLAIM FAILED") {
		problems = append(problems, "fresh run reports: "+fresh.Finding)
	}
	if strings.Contains(committed.Finding, "CLAIM FAILED") {
		problems = append(problems, "committed snapshot reports: "+committed.Finding)
	}
	if fresh.ID != committed.ID || fresh.Title != committed.Title {
		problems = append(problems, fmt.Sprintf("identity changed: %s/%q vs committed %s/%q",
			fresh.ID, fresh.Title, committed.ID, committed.Title))
	}
	if strings.Join(fresh.Header, "|") != strings.Join(committed.Header, "|") {
		problems = append(problems, fmt.Sprintf("header changed: %v vs committed %v", fresh.Header, committed.Header))
		return problems // cell comparison is meaningless across headers
	}
	if len(fresh.Rows) != len(committed.Rows) {
		problems = append(problems, fmt.Sprintf("row count changed: %d vs committed %d", len(fresh.Rows), len(committed.Rows)))
		return problems
	}
	for r := range committed.Rows {
		if len(fresh.Rows[r]) != len(committed.Rows[r]) {
			problems = append(problems, fmt.Sprintf("row %d width changed", r))
			continue
		}
		for c := range committed.Rows[r] {
			problems = append(problems, diffCell(committed, fresh, r, c, tol)...)
		}
	}
	return problems
}

func diffCell(committed, fresh *bench.Table, r, c int, tol float64) []string {
	header := committed.Header[c]
	want, haveWant := numeric(committed.Rows[r][c])
	got, haveGot := numeric(fresh.Rows[r][c])
	loc := fmt.Sprintf("row %d %q", r, header)
	if noisyColumn(header) {
		// Structural agreement only: a number stayed a number, a marker
		// ("baseline", "n/a", "-") stayed itself.
		switch {
		case haveWant != haveGot:
			return []string{fmt.Sprintf("%s: %q vs committed %q (numeric/text shape changed)",
				loc, fresh.Rows[r][c], committed.Rows[r][c])}
		case !haveWant && fresh.Rows[r][c] != committed.Rows[r][c]:
			return []string{fmt.Sprintf("%s: %q vs committed %q", loc, fresh.Rows[r][c], committed.Rows[r][c])}
		}
		return nil
	}
	switch {
	case haveWant != haveGot:
		return []string{fmt.Sprintf("%s: %q vs committed %q (numeric/text shape changed)",
			loc, fresh.Rows[r][c], committed.Rows[r][c])}
	case !haveWant:
		if fresh.Rows[r][c] != committed.Rows[r][c] {
			return []string{fmt.Sprintf("%s: %q vs committed %q", loc, fresh.Rows[r][c], committed.Rows[r][c])}
		}
	default:
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		limit := tol * abs(want)
		if abs(want) == 0 {
			limit = 0 // a committed zero must stay zero
		}
		if diff > limit {
			return []string{fmt.Sprintf("%s: %g vs committed %g (beyond %.0f%% tolerance)",
				loc, got, want, tol*100)}
		}
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func countCells(t *bench.Table) (strict, noisy int) {
	for _, row := range t.Rows {
		for c := range row {
			if c < len(t.Header) && noisyColumn(t.Header[c]) {
				noisy++
			} else {
				strict++
			}
		}
	}
	return strict, noisy
}
