package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"statdb/internal/bench"
)

func table() *bench.Table {
	return &bench.Table{
		ID:     "EX",
		Title:  "example",
		Header: []string{"config", "ticks", "ns/op", "shed", "answers"},
		Rows: [][]string{
			{"base", "1024", "55123", "0", "yes"},
			{"wide", "2048", "83999", "12", "yes"},
		},
		Finding: "all good",
	}
}

func TestDiffTablesClean(t *testing.T) {
	committed, fresh := table(), table()
	// Noisy columns may move arbitrarily without a finding.
	fresh.Rows[0][2] = "99999999"
	fresh.Rows[1][3] = "3"
	// A NOISY marker is an experiment self-reporting a wall-clock miss
	// on this machine; it warns but must not diverge the snapshot.
	fresh.Finding = "all good [CLAIM NOISY: wall 4.0x < 10x]"
	if problems := diffTables(committed, fresh, 0.01); len(problems) != 0 {
		t.Errorf("clean diff reported: %v", problems)
	}
}

func TestDiffTablesCatches(t *testing.T) {
	for name, tc := range map[string]struct {
		mut  func(fresh *bench.Table)
		want string
	}{
		"tick drift":      {func(f *bench.Table) { f.Rows[0][1] = "1100" }, "tolerance"},
		"text change":     {func(f *bench.Table) { f.Rows[0][4] = "NO" }, `"NO"`},
		"numeric to text": {func(f *bench.Table) { f.Rows[1][1] = "n/a" }, "shape changed"},
		"noisy shape":     {func(f *bench.Table) { f.Rows[0][2] = "n/a" }, "shape changed"},
		"row loss":        {func(f *bench.Table) { f.Rows = f.Rows[:1] }, "row count"},
		"header change":   {func(f *bench.Table) { f.Header[1] = "cells" }, "header changed"},
		"fresh claim":     {func(f *bench.Table) { f.Finding = "x [CLAIM FAILED: y]" }, "fresh run reports"},
	} {
		fresh := table()
		tc.mut(fresh)
		problems := diffTables(table(), fresh, 0.01)
		if len(problems) == 0 {
			t.Errorf("%s: not caught", name)
			continue
		}
		if !strings.Contains(strings.Join(problems, "\n"), tc.want) {
			t.Errorf("%s: problems %v lack %q", name, problems, tc.want)
		}
	}
}

func TestDiffTablesToleranceHolds(t *testing.T) {
	fresh := table()
	fresh.Rows[0][1] = "1030" // +0.6% on 1024
	if problems := diffTables(table(), fresh, 0.01); len(problems) != 0 {
		t.Errorf("within-tolerance drift reported: %v", problems)
	}
	// A committed zero must stay zero regardless of tolerance.
	fresh = table()
	fresh.Rows[0][1] = "0"
	committed := table()
	committed.Rows[0][1] = "0"
	fresh2 := table()
	fresh2.Rows[0][1] = "1"
	if problems := diffTables(committed, fresh, 0.5); len(problems) != 0 {
		t.Errorf("zero==zero reported: %v", problems)
	}
	if problems := diffTables(committed, fresh2, 0.5); len(problems) == 0 {
		t.Error("zero -> nonzero not caught")
	}
}

func TestNoisyColumn(t *testing.T) {
	for _, h := range []string{"ns/op", "row ns/op", "overhead", "wall speedup", "throughput/s", "p99_us", "shed", "elapsed_us"} {
		if !noisyColumn(h) {
			t.Errorf("%q not classified noisy", h)
		}
	}
	for _, h := range []string{"ticks", "rows", "speedup", "tick speedup", "sessions", "answers match"} {
		if noisyColumn(h) {
			t.Errorf("%q wrongly classified noisy", h)
		}
	}
}

// TestEndToEnd runs the real flow against a snapshot generated from the
// registry itself (F4 re-derives the paper's printed Summary-DB values
// — cheap and fully deterministic), then corrupts it and expects exit 1.
func TestEndToEnd(t *testing.T) {
	fresh, err := runExperiment("F4")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(tab *bench.Table) {
		data, err := json.Marshal(tab)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "BENCH_F4.json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(fresh)
	var out, errOut strings.Builder
	if code := realMain([]string{"-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("clean diff exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "benchdiff: F4 ok") {
		t.Errorf("missing ok line: %q", out.String())
	}

	fresh.Rows[0][1] = "999999"
	write(fresh)
	out.Reset()
	errOut.Reset()
	if code := realMain([]string{"-dir", dir}, &out, &errOut); code != 1 {
		t.Fatalf("corrupted snapshot exited %d, want 1: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "1 of 1 snapshots diverged") {
		t.Errorf("missing summary: %q", errOut.String())
	}

	// A snapshot naming a nonexistent experiment fails too.
	if err := os.Rename(filepath.Join(dir, "BENCH_F4.json"), filepath.Join(dir, "BENCH_E999.json")); err != nil {
		t.Fatal(err)
	}
	if code := realMain([]string{"-dir", dir}, &out, &errOut); code != 1 {
		t.Error("unknown experiment id did not fail")
	}
}
