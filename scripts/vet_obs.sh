#!/bin/sh
# vet_obs.sh — observability lint: all metric primitives live in
# internal/obs. No other package may import sync/atomic or expvar to
# roll its own counters; instrumentation goes through obs.Registry so
# every number shows up in `statdb stats` and DBMS.Metrics().
#
# Allowlist:
#   internal/exec/exec.go — uses atomic.Int64 as the worker pool's
#   chunk-dispatch cursor, which is work distribution, not a metric.
set -eu
cd "$(dirname "$0")/.."

allow="internal/exec/exec.go"

# Tests may use atomics for concurrency assertions; the rule governs
# production code.
bad=$(grep -rln --include='*.go' --exclude='*_test.go' \
	-e '"sync/atomic"' -e '"expvar"' \
	cmd internal examples | grep -v '^internal/obs/' || true)

fail=0
for f in $bad; do
	skip=0
	for a in $allow; do
		[ "$f" = "$a" ] && skip=1
	done
	if [ "$skip" = 0 ]; then
		echo "vet-obs: $f imports sync/atomic or expvar; use internal/obs instruments instead" >&2
		fail=1
	fi
done

# net/http is confined to the export layer (internal/obs serves the
# exposition endpoint) and cmd/statdb (the serve subcommand). Engine,
# storage and query packages must stay transport-free.
badhttp=$(grep -rln --include='*.go' --exclude='*_test.go' \
	-e '"net/http"' \
	cmd internal examples | grep -v '^internal/obs/' | grep -v '^cmd/statdb/' || true)

for f in $badhttp; do
	echo "vet-obs: $f imports net/http; the HTTP surface is internal/obs + cmd/statdb only" >&2
	fail=1
done

if [ "$fail" != 0 ]; then
	exit 1
fi
echo "vet-obs: ok (counter primitives confined to internal/obs; net/http confined to internal/obs + cmd/statdb)"
