// Dbmachine: the Section 4.3 scenario that motivated the paper — backing
// the statistical DBMS with a database machine. A processor array
// filters the raw census during view materialization, recomputes summary
// aggregates near the data, and searches the Summary Database
// associatively; each step prints host-only vs machine costs.
package main

import (
	"fmt"
	"log"

	"statdb/internal/dataset"
	"statdb/internal/dbmachine"
	"statdb/internal/relalg"
	"statdb/internal/tape"
	"statdb/internal/workload"
)

func main() {
	census, err := workload.Census(workload.DefaultCensusSpec())
	if err != nil {
		log.Fatal(err)
	}
	archive := tape.NewArchive(tape.DefaultCost())
	if err := archive.Write("census80", census); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Use 1 — view materialization by on-the-fly selection")
	pred := relalg.And{
		relalg.Cmp{Attr: "SEX", Op: relalg.Eq, Val: dataset.String("F")},
		relalg.Cmp{Attr: "AGE_GROUP", Op: relalg.Ge, Val: dataset.Int(3)},
	}
	for _, p := range []int{1, 8, 32} {
		m, err := dbmachine.New(dbmachine.Config{Processors: p, RowProcessCost: 2, RowShipCost: 1})
		if err != nil {
			log.Fatal(err)
		}
		view, st, err := m.FilterScan(archive, "census80", pred)
		if err != nil {
			log.Fatal(err)
		}
		host := m.HostFilterCost(st.RowsScanned)
		fmt.Printf("  P=%-3d scanned=%d shipped=%d machine+host=%d (host-only %d, %.1fx)\n",
			p, st.RowsScanned, st.RowsShipped, st.Total(), host.Total(),
			float64(host.Total())/float64(st.Total()))
		if p == 32 {
			fmt.Printf("  materialized view: %d rows of %d\n", view.Rows(), census.Rows())
		}
	}

	fmt.Println("\nUse 3 — summary recomputation near the data (parallel aggregate)")
	xs, valid, err := census.NumericByName("POPULATION")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []int{1, 8, 32} {
		m, _ := dbmachine.New(dbmachine.Config{Processors: p, RowProcessCost: 2, RowShipCost: 1})
		sum, st, err := m.Aggregate(dbmachine.AggSum, xs, valid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  P=%-3d sum(POPULATION)=%.0f in %d ticks\n", p, sum, st.Total())
	}

	fmt.Println("\nUse 2 — pseudo-associative Summary Database search")
	for _, p := range []int{1, 8, 32} {
		m, _ := dbmachine.New(dbmachine.Config{Processors: p, RowProcessCost: 1, RowShipCost: 1})
		machine, host := m.AssociativeSearch(5000)
		fmt.Printf("  P=%-3d probe 5000 entries: %d steps (host %d)\n", p, machine, host)
	}

	fmt.Println("\nThe paper deferred the hardware design (\"too premature\");")
	fmt.Println("the cost model shows where it would pay: every per-row operation.")
}
