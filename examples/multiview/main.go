// Multiview: several analysts over one raw database (Section 2.3) —
// private views, publication of cleaned data, rejection of wasteful
// duplicate materializations, and a SUBJECT-style metadata navigation
// that generates a view request.
package main

import (
	"errors"
	"fmt"
	"log"

	"statdb/internal/core"
	"statdb/internal/dataset"
	"statdb/internal/relalg"
	"statdb/internal/rules"
	"statdb/internal/workload"
)

func main() {
	dbms := core.New()
	census, err := workload.Census(workload.DefaultCensusSpec())
	if err != nil {
		log.Fatal(err)
	}
	if err := dbms.LoadRaw("census80", census); err != nil {
		log.Fatal(err)
	}

	// Analyst 1 studies pollution effects by race; cleans the data and
	// publishes the result.
	boral := dbms.Analyst("boral")
	mb := boral.Materialize("census80")
	mb.Builder().Select(relalg.Cmp{Attr: "REGION", Op: relalg.Le, Val: dataset.Int(3)})
	byRace, err := mb.Build("northeast")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := byRace.InvalidateWhere("AVE_SALARY",
		relalg.Cmp{Attr: "AVE_SALARY", Op: relalg.Gt, Val: dataset.Int(35000)}); err != nil {
		log.Fatal(err)
	}
	if err := boral.Publish("northeast"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boral published %q (%d rows, cleaned)\n", byRace.Name(), byRace.Rows())

	// Analyst 2 tries to rebuild the same view: the Management Database
	// recognizes the identical derivation and refuses, pointing at the
	// published one — no tape pass is wasted.
	dewitt := dbms.Analyst("dewitt")
	mb2 := dewitt.Materialize("census80")
	mb2.Builder().Select(relalg.Cmp{Attr: "REGION", Op: relalg.Le, Val: dataset.Int(3)})
	_, err = mb2.Build("northeast-again")
	var dup *rules.ErrDuplicateView
	if errors.As(err, &dup) {
		fmt.Printf("dewitt's re-materialization rejected: reuse %q (by %s)\n", dup.Existing, dup.Analyst)
	} else {
		log.Fatalf("expected duplicate rejection, got %v", err)
	}

	// Instead, analyst 2 opens the published view and examines the
	// cleaning history before analyzing.
	shared, err := dewitt.View("northeast")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cleaning actions on the shared view:")
	for _, rec := range shared.History().Records() {
		fmt.Printf("  #%d %s: %s\n", rec.Seq, rec.Analyst, rec.Description)
	}
	med, err := shared.Compute("median", "AVE_SALARY")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dewitt: median AVE_SALARY in the cleaned view = %.0f\n\n", med)

	// Analyst 3 finds her attributes by navigating the metadata graph
	// rather than reading a 200-page code book.
	g := dbms.Meta()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	_, err = g.AddGeneralization("Census", "1980 public use sample")
	must(err)
	_, err = g.AddGeneralization("Demographics", "who")
	must(err)
	_, err = g.AddGeneralization("Economics", "what they earn")
	must(err)
	_, err = g.AddAttribute("Sex", "sex", "census80", "SEX")
	must(err)
	_, err = g.AddAttribute("AgeGroup", "age group code", "census80", "AGE_GROUP")
	must(err)
	_, err = g.AddAttribute("Salary", "average salary", "census80", "AVE_SALARY")
	must(err)
	_, err = g.AddAttribute("Population", "cell population", "census80", "POPULATION")
	must(err)
	must(g.Link("Census", "Demographics"))
	must(g.Link("Census", "Economics"))
	must(g.Link("Demographics", "Sex"))
	must(g.Link("Demographics", "AgeGroup"))
	must(g.Link("Economics", "Salary"))
	must(g.Link("Economics", "Population"))

	sess, err := g.NewSession("Census")
	must(err)
	must(sess.Descend("Economics"))
	must(sess.Mark())
	fmt.Printf("bates navigated: %s (marked all economics attributes)\n", sess.Path())
	req, err := sess.Request()
	must(err)
	v3, err := dbms.Analyst("bates").MaterializeFromMeta(req, "economics")
	must(err)
	fmt.Printf("view generated from the path: %s\n", v3.Dataset().Schema())

	fmt.Println("\nall registered views:")
	for _, name := range dbms.Management().Views() {
		def, _ := dbms.Management().View(name)
		vis := "private"
		if def.Public {
			vis = "public"
		}
		fmt.Printf("  %-12s analyst=%-8s %s\n", name, def.Analyst, vis)
	}
}
