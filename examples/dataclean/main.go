// Dataclean: the data-checking workflow of Sections 2.2 and 3.1 — hunt
// for invalid values with range checks and the cached mean±k·sd test,
// mark them missing, audit the update history, and undo a mistake.
package main

import (
	"fmt"
	"log"

	"statdb/internal/core"
	"statdb/internal/dataset"
	"statdb/internal/relalg"
	"statdb/internal/stats"
	"statdb/internal/workload"
)

func main() {
	// Raw data with injected measurement errors (the "age recorded as
	// 1,000" of Section 3.1: here salaries scaled 100x).
	raw := workload.Microdata(20000, 44)
	badRows, err := workload.InjectOutliers(raw, "SALARY", 0.002, 100, 45)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw data: %d rows, %d corrupted salaries hidden inside\n", raw.Rows(), len(badRows))

	dbms := core.New()
	if err := dbms.LoadRaw("survey", raw); err != nil {
		log.Fatal(err)
	}
	v, err := dbms.Analyst("checker").Materialize("survey").Build("clean")
	if err != nil {
		log.Fatal(err)
	}

	// Pass 1: a coarse range check.
	xs, valid, err := v.Column("SALARY")
	if err != nil {
		log.Fatal(err)
	}
	suspects := stats.RangeCheck(xs, valid, 0, 500000)
	fmt.Printf("range check [0, 500000]: %d suspicious values\n", len(suspects))

	// Pass 2: the mean ± k·sd test reusing cached summaries — the exact
	// reuse pattern Section 3.1 motivates.
	mean, err := v.Compute("mean", "SALARY")
	if err != nil {
		log.Fatal(err)
	}
	sd, err := v.Compute("sd", "SALARY")
	if err != nil {
		log.Fatal(err)
	}
	outliers := stats.OutsideKSigmaWith(xs, valid, mean, sd, 6)
	fmt.Printf("mean±6sd test (cached mean=%.0f, sd=%.0f): %d outliers\n", mean, sd, len(outliers))

	// Invalidate everything beyond the threshold.
	n, err := v.InvalidateWhere("SALARY",
		relalg.Cmp{Attr: "SALARY", Op: relalg.Gt, Val: dataset.Float(mean + 6*sd)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("marked %d values missing\n", n)
	missing, _ := v.Dataset().MissingCount("SALARY")
	cleanMean, _ := v.Compute("mean", "SALARY")
	fmt.Printf("after cleaning: %d missing, mean=%.0f (was %.0f)\n", missing, cleanMean, mean)

	// Oops: an over-eager second cut.
	if _, err := v.InvalidateWhere("SALARY",
		relalg.Cmp{Attr: "SALARY", Op: relalg.Gt, Val: dataset.Float(mean)}); err != nil {
		log.Fatal(err)
	}
	m2, _ := v.Compute("count", "SALARY")
	fmt.Printf("over-cleaned: only %d values left — undoing\n", int(m2))
	if err := v.Undo(); err != nil {
		log.Fatal(err)
	}
	m3, _ := v.Compute("count", "SALARY")
	fmt.Printf("after undo: %d values\n", int(m3))

	// The audit trail other analysts would consult (Section 3.2: "rather
	// than repeating the mundane and time consuming data checking
	// operations they can examine what actions were taken").
	fmt.Println("\nupdate history:")
	for _, rec := range v.History().Records() {
		fmt.Printf("  #%d %s: %s (%d cells)\n", rec.Seq, rec.Analyst, rec.Description, len(rec.Changes))
	}

	// Verify the cleaning caught the injected corruption.
	si := v.Dataset().Schema().Index("SALARY")
	caught := 0
	for _, r := range badRows {
		if v.Dataset().Cell(r, si).IsNull() {
			caught++
		}
	}
	fmt.Printf("\ninjected corruptions caught: %d/%d\n", caught, len(badRows))
}
