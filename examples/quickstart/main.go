// Quickstart: the smallest end-to-end use of the statistical DBMS —
// archive a raw data set, materialize a concrete view, compute cached
// summary statistics, update the view, and undo.
package main

import (
	"fmt"
	"log"

	"statdb/internal/core"
	"statdb/internal/dataset"
	"statdb/internal/relalg"
	"statdb/internal/workload"
)

func main() {
	// A DBMS over a simulated tape archive holding the raw database.
	dbms := core.New()
	if err := dbms.LoadRaw("figure1", workload.Figure1()); err != nil {
		log.Fatal(err)
	}

	// An analyst materializes a private concrete view: White rows only,
	// decoded age groups, sorted by salary.
	analyst := dbms.Analyst("quickstart")
	mb := analyst.Materialize("figure1")
	mb.Builder().
		Select(relalg.Cmp{Attr: "RACE", Op: relalg.Eq, Val: dataset.String("W")}).
		Decode("AGE_GROUP").
		Sort(relalg.SortKey{Attr: "AVE_SALARY"})
	v, err := mb.Build("whites")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized view %q: %d rows\n", v.Name(), v.Rows())
	fmt.Println(v.Dataset())

	// Summary statistics are computed once and then served from the
	// view's Summary Database.
	for _, fn := range []string{"min", "max", "mean", "median"} {
		val, err := v.Compute(fn, "AVE_SALARY")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8s(AVE_SALARY) = %.1f\n", fn, val)
	}
	fmt.Printf("cache: %+v\n", v.Summary().Counters())

	// An update propagates into the cached summaries automatically...
	n, err := v.UpdateWhere("AVE_SALARY",
		relalg.Cmp{Attr: "AVE_SALARY", Op: relalg.Lt, Val: dataset.Int(16000)},
		dataset.Null)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninvalidated %d suspicious salaries\n", n)
	m, _ := v.Compute("mean", "AVE_SALARY")
	fmt.Printf("mean after invalidation = %.1f\n", m)

	// ...and can be undone from the Management Database's history.
	if err := v.Undo(); err != nil {
		log.Fatal(err)
	}
	m, _ = v.Compute("mean", "AVE_SALARY")
	fmt.Printf("mean after undo         = %.1f\n", m)
}
